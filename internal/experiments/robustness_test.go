package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

// driftScenario is the acceptance scenario of the guard-rail work: a 2×
// all-stage runtime drift injected 15% of the way to the deadline, early
// enough that most of the run executes under the drifted regime.
func driftScenario(deadline time.Duration) []cluster.StageDrift {
	return []cluster.StageDrift{{At: time.Duration(0.15 * float64(deadline)), Stage: -1, Factor: 2.0}}
}

// TestGuardBeatsUnguardedUnderDrift is the PR's acceptance criterion: under
// an injected 2× mid-run stage-runtime drift, the guarded controller's
// deadline-miss rate is strictly lower than the unguarded controller's at an
// equal token budget (same candidate grid, same cluster, same seeds).
func TestGuardBeatsUnguardedUnderDrift(t *testing.T) {
	env := sharedEnv
	short, _, err := env.Deadlines("B")
	if err != nil {
		t.Fatal(err)
	}
	drift := driftScenario(short)
	var guardedMiss, unguardedMiss int
	const seeds = 4
	for s := 0; s < seeds; s++ {
		seed := stats.DeriveSeed(env.Seed, "robust", "B", "drift-2x", fmt.Sprint(s))
		for _, guarded := range []bool{false, true} {
			o, err := env.Run(SLORun{
				Job:        "B",
				Deadline:   short,
				Policy:     PolicyJockey,
				Guarded:    guarded,
				Seed:       seed,
				InputScale: 1, // isolate the injected drift
				Drifts:     drift,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !o.Met {
				if guarded {
					guardedMiss++
				} else {
					unguardedMiss++
				}
			}
			if guarded && len(o.GuardEvents) == 0 {
				t.Errorf("seed %d: guard never reacted to a 2x drift", s)
			}
		}
	}
	t.Logf("misses over %d seeds: guarded=%d unguarded=%d", seeds, guardedMiss, unguardedMiss)
	if guardedMiss >= unguardedMiss {
		t.Errorf("guarded controller must miss strictly less than unguarded under drift: %d vs %d",
			guardedMiss, unguardedMiss)
	}
}

// TestGuardedRunDeterministicAcrossParallelism: guard-rail behavior (rebuild
// seeds, ladder transitions, allocation trajectory) must be bit-identical at
// any worker-pool width, since rebuild seeds derive from a generation
// counter, not from scheduling.
func TestGuardedRunDeterministicAcrossParallelism(t *testing.T) {
	type key struct{ par int }
	outcomes := map[key]Outcome{}
	for _, par := range []int{1, 4} {
		env := NewEnv(7) // same master seed as sharedEnv, fresh caches
		env.Parallelism = par
		short, _, err := env.Deadlines("B")
		if err != nil {
			t.Fatal(err)
		}
		o, err := env.Run(SLORun{
			Job:        "B",
			Deadline:   short,
			Policy:     PolicyJockey,
			Guarded:    true,
			Seed:       stats.DeriveSeed(env.Seed, "robust", "B", "drift-2x", "0"),
			InputScale: 1,
			Drifts:     driftScenario(short),
		})
		if err != nil {
			t.Fatal(err)
		}
		outcomes[key{par}] = o
	}
	a, b := outcomes[key{1}], outcomes[key{4}]
	if a.Completion != b.Completion {
		t.Fatalf("completion diverged across parallelism: %v vs %v", a.Completion, b.Completion)
	}
	if len(a.GuardEvents) != len(b.GuardEvents) {
		t.Fatalf("guard events diverged: %d vs %d\n%v\n%v",
			len(a.GuardEvents), len(b.GuardEvents), a.GuardEvents, b.GuardEvents)
	}
	for i := range a.GuardEvents {
		if a.GuardEvents[i] != b.GuardEvents[i] {
			t.Errorf("guard event %d diverged: %+v vs %+v", i, a.GuardEvents[i], b.GuardEvents[i])
		}
	}
	if len(a.Trace.Timeline) != len(b.Trace.Timeline) {
		t.Fatalf("timelines diverged: %d vs %d points", len(a.Trace.Timeline), len(b.Trace.Timeline))
	}
	for i := range a.Trace.Timeline {
		if a.Trace.Timeline[i] != b.Trace.Timeline[i] {
			t.Errorf("timeline point %d diverged: %+v vs %+v", i, a.Trace.Timeline[i], b.Trace.Timeline[i])
		}
	}
}

func TestRobustnessSmall(t *testing.T) {
	res, err := Robustness(sharedEnv, "B", 1)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(DefaultRobustnessScenarios(res.Deadline)) * len(RobustnessVariants)
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	byCell := map[[2]string]RobustnessRow{}
	for _, r := range res.Rows {
		if r.Runs != 1 {
			t.Errorf("%s/%s: runs = %d", r.Scenario, r.Policy, r.Runs)
		}
		byCell[[2]string{r.Scenario, r.Policy}] = r
	}
	// Only guarded rows may carry guard transitions.
	for cell, r := range byCell {
		if cell[1] != "jockey-guarded" && r.Reprofiles+r.Fallbacks+r.Panics != 0 {
			t.Errorf("%v: unguarded row has guard events", cell)
		}
	}
	// Under drift the guard must at least react.
	drifted := byCell[[2]string{"drift-2x", "jockey-guarded"}]
	if drifted.Reprofiles+drifted.Fallbacks+drifted.Panics == 0 {
		t.Error("guarded drift cell recorded no guard activity")
	}
	out := res.Render()
	for _, want := range []string{"Robustness", "drift-2x", "jockey-guarded", "combined", "churn"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAllocChurn(t *testing.T) {
	var pts []trace.AllocPoint
	for _, g := range []int{10, 20, 15, 15, 30} {
		pts = append(pts, trace.AllocPoint{Granted: g})
	}
	if got := AllocChurn(pts); got != 10+5+0+15 {
		t.Errorf("churn = %d", got)
	}
	if got := AllocChurn(nil); got != 0 {
		t.Errorf("churn(nil) = %d", got)
	}
}
