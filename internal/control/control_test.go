package control

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// testPredictor: deterministic 20x30s map + 4x60s reduce job via Amdahl.
// Total work 840s, critical path 90s.
func testSetup(t testing.TB) (*profile.Profile, model.Predictor) {
	t.Helper()
	job := dag.NewBuilder("det").
		Stage("map", 20).
		Stage("reduce", 4).
		Edge("map", "reduce", dag.AllToAll).
		MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 30 * time.Second}},
		{Exec: stats.Point{V: 60 * time.Second}},
	})
	return p, model.NewAmdahl(p)
}

func candidates() []int {
	out := make([]int, 100)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	_, pred := testSetup(t)
	u := utility.Deadline(time.Hour)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no predictor", Config{Utility: u, Candidates: []int{1}}},
		{"no utility", Config{Predictor: pred, Candidates: []int{1}}},
		{"no candidates", Config{Predictor: pred, Utility: u}},
		{"descending", Config{Predictor: pred, Utility: u, Candidates: []int{5, 2}}},
		{"zero candidate", Config{Predictor: pred, Utility: u, Candidates: []int{0, 2}}},
		{"slack below 1", Config{Predictor: pred, Utility: u, Candidates: []int{1}, Slack: 0.5}},
		{"hysteresis above 1", Config{Predictor: pred, Utility: u, Candidates: []int{1}, Hysteresis: 1.5}},
		{"bad quantile", Config{Predictor: pred, Utility: u, Candidates: []int{1}, PredictQuantile: 2}},
	}
	for _, c := range cases {
		if _, err := NewController(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewController(Config{Predictor: pred, Utility: u, Candidates: candidates()}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFirstDecisionJumpsToRaw(t *testing.T) {
	_, pred := testSetup(t)
	// Deadline 5 min; work 840s with S=90s. Amdahl with slack 1.2:
	// need 1.2*(90 + 840/a) <= 300 - 180 (deadzone 3m shifts to 2m? no:
	// deadline 5m, deadzone 3m -> effective 2m). Keep deadzone 0 for clarity:
	// 1.2*(90+840/a) <= 300 -> 840/a <= 160 -> a >= 5.25 -> a = 6.
	c, err := NewController(Config{
		Predictor:  pred,
		Utility:    utility.Deadline(5 * time.Minute),
		Candidates: candidates(),
		Slack:      1.2,
		DeadZone:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Decide(model.State{FracDone: []float64{0, 0}})
	if d.Raw != 6 || d.Granted != 6 {
		t.Errorf("first decision = %+v, want raw=granted=6", d)
	}
	if d.Predicted <= 0 {
		t.Error("predicted completion missing")
	}
}

func TestHysteresisSmoothsChanges(t *testing.T) {
	_, pred := testSetup(t)
	c, err := NewController(Config{
		Predictor:  pred,
		Utility:    utility.Deadline(5 * time.Minute),
		Candidates: candidates(),
		Slack:      1.2,
		Hysteresis: 0.2,
		DeadZone:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := c.Decide(model.State{FracDone: []float64{0, 0}})
	// Suppose the map stage instantly completes: far ahead of schedule, the
	// raw allocation collapses, but the grant should move only ~20% of the
	// way down per tick.
	st := model.State{Elapsed: 30 * time.Second, FracDone: []float64{1, 0}}
	second := c.Decide(st)
	if second.Raw >= first.Raw {
		t.Fatalf("raw should drop: %d -> %d", first.Raw, second.Raw)
	}
	drop := first.Granted - second.Granted
	fullDrop := first.Granted - second.Raw
	if drop <= 0 || drop > fullDrop/3 {
		t.Errorf("grant dropped %d of %d; hysteresis should damp to ~20%%", drop, fullDrop)
	}
	// Repeated ticks converge towards raw.
	var last Decision
	for i := 0; i < 50; i++ {
		last = c.Decide(st)
	}
	if last.Granted != last.Raw {
		t.Errorf("grant %d did not converge to raw %d", last.Granted, last.Raw)
	}
}

func TestNoHysteresisJumpsImmediately(t *testing.T) {
	_, pred := testSetup(t)
	c, err := NewController(Config{
		Predictor:  pred,
		Utility:    utility.Deadline(5 * time.Minute),
		Candidates: candidates(),
		Hysteresis: 1.0,
		DeadZone:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Decide(model.State{FracDone: []float64{0, 0}})
	st := model.State{Elapsed: 30 * time.Second, FracDone: []float64{1, 0}}
	d := c.Decide(st)
	if d.Granted != d.Raw {
		t.Errorf("α=1 must jump to raw: granted %d raw %d", d.Granted, d.Raw)
	}
}

func TestDeadZoneHoldsWithinBand(t *testing.T) {
	_, pred := testSetup(t)
	c, err := NewController(Config{
		Predictor:  pred,
		Utility:    utility.Deadline(10 * time.Minute),
		Candidates: candidates(),
		Slack:      1.0,
		Hysteresis: 1.0,
		DeadZone:   3 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Initial decision against the shifted (7-minute) deadline:
	// 90 + 840/a <= 420 -> a = 3.
	first := c.Decide(model.State{FracDone: []float64{0, 0}})
	if first.Granted != 3 {
		t.Fatalf("initial grant = %d, want 3", first.Granted)
	}
	// 4 minutes in with only 10%% of the map done, the shifted-curve raw
	// allocation wants ~9 tokens, but the predicted completion at the
	// current grant (587s) still makes the *original* 600s deadline — the
	// job is less than D behind schedule, so the grant must hold.
	band := model.State{Elapsed: 4 * time.Minute, FracDone: []float64{0.1, 0}}
	d := c.Decide(band)
	if d.Raw <= first.Granted {
		t.Fatalf("raw should want to rise in the band: %d", d.Raw)
	}
	if d.Granted != first.Granted {
		t.Errorf("dead zone should hold the grant: %d -> %d (raw %d)", first.Granted, d.Granted, d.Raw)
	}
	// One minute later the predicted completion (647s) misses the original
	// deadline: now the controller must raise the grant.
	late := model.State{Elapsed: 5 * time.Minute, FracDone: []float64{0.1, 0}}
	d2 := c.Decide(late)
	if d2.Granted <= first.Granted {
		t.Errorf("grant must rise when more than D behind: %d -> %d", first.Granted, d2.Granted)
	}
}

func TestDeadZoneAllowsReleases(t *testing.T) {
	_, pred := testSetup(t)
	c, err := NewController(Config{
		Predictor:  pred,
		Utility:    utility.Deadline(5 * time.Minute),
		Candidates: candidates(),
		Slack:      1.0,
		Hysteresis: 1.0,
		DeadZone:   time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := c.Decide(model.State{FracDone: []float64{0, 0}})
	// The job runs far ahead of schedule: releasing resources must not be
	// blocked by the dead zone (cf. Fig. 6c).
	ahead := model.State{Elapsed: 30 * time.Second, FracDone: []float64{1, 0.5}}
	d := c.Decide(ahead)
	if d.Granted >= first.Granted {
		t.Errorf("grant should fall when ahead: %d -> %d", first.Granted, d.Granted)
	}
}

func TestChangeUtilityTightensDeadline(t *testing.T) {
	_, pred := testSetup(t)
	c, err := NewController(Config{
		Predictor:  pred,
		Utility:    utility.Deadline(20 * time.Minute),
		Candidates: candidates(),
		Hysteresis: 1.0,
		DeadZone:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := model.State{FracDone: []float64{0, 0}}
	loose := c.Decide(st)
	c.ChangeUtility(utility.Deadline(4 * time.Minute))
	tight := c.Decide(model.State{Elapsed: time.Minute, FracDone: []float64{0.2, 0}})
	if tight.Granted <= loose.Granted {
		t.Errorf("halved deadline must raise allocation: %d -> %d", loose.Granted, tight.Granted)
	}
	if c.Name() != "jockey-amdahl" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestControllerNameWithSimulator(t *testing.T) {
	p, _ := testSetup(t)
	cpa, err := model.BuildCPA(p, progress.NewTotalWorkWithQ(p), model.CPAConfig{
		Allocs: []int{2, 8, 20}, RunsPerAlloc: 3, SampleEvery: 15 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(Config{
		Predictor:  cpa,
		Utility:    utility.Deadline(5 * time.Minute),
		Candidates: cpa.Allocs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "jockey" {
		t.Errorf("name = %q", c.Name())
	}
	d := c.Decide(model.State{FracDone: []float64{0, 0}})
	if d.Progress != 0 {
		t.Errorf("initial progress = %v", d.Progress)
	}
	d = c.Decide(model.State{Elapsed: time.Minute, FracDone: []float64{1, 0}})
	if d.Progress <= 0.5 {
		t.Errorf("map-done progress = %v, want > 0.5", d.Progress)
	}
}

func TestStaticPolicy(t *testing.T) {
	_, pred := testSetup(t)
	s, err := NewStatic(Config{
		Predictor:  pred,
		Utility:    utility.Deadline(5 * time.Minute),
		Candidates: candidates(),
		Slack:      1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "jockey-static" {
		t.Errorf("name = %q", s.Name())
	}
	first := s.Decide(model.State{FracDone: []float64{0, 0}})
	if first.Granted != 6 {
		t.Errorf("static allocation = %d, want 6", first.Granted)
	}
	// The decision never changes, even if the job stalls or the deadline
	// moves.
	s.ChangeUtility(utility.Deadline(time.Minute))
	later := s.Decide(model.State{Elapsed: 4 * time.Minute, FracDone: []float64{0.1, 0}})
	if later.Granted != first.Granted {
		t.Errorf("static policy adapted: %d -> %d", first.Granted, later.Granted)
	}
}

func TestStaticConfigValidation(t *testing.T) {
	if _, err := NewStatic(Config{}); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestMaxAllocation(t *testing.T) {
	m, err := NewMaxAllocation(100)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "max-allocation" {
		t.Errorf("name = %q", m.Name())
	}
	d := m.Decide(model.State{})
	if d.Granted != 100 || d.Raw != 100 {
		t.Errorf("decision = %+v", d)
	}
	m.ChangeUtility(utility.Deadline(time.Minute)) // must not panic
	if _, err := NewMaxAllocation(0); err == nil {
		t.Error("zero tokens must fail")
	}
}

func TestUtilityKnee(t *testing.T) {
	if got := utilityKnee(utility.Deadline(time.Hour)); got != time.Hour {
		t.Errorf("knee = %v, want 1h", got)
	}
}
