package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

// DefaultJobs are the seven detailed evaluation jobs.
var DefaultJobs = []string{"A", "B", "C", "D", "E", "F", "G"}

// ComparisonConfig sizes the Figure 4/5 experiment.
type ComparisonConfig struct {
	// Jobs to run (default the seven Table 2 jobs).
	Jobs []string
	// SeedsPerCase is the number of repetitions per (job, deadline)
	// combination (default 3, giving 7×2×3 = 42 runs per policy; the paper
	// ran >80).
	SeedsPerCase int
	// Policies to compare (default all four).
	Policies []PolicyKind
}

func (c *ComparisonConfig) fill() {
	if len(c.Jobs) == 0 {
		c.Jobs = DefaultJobs
	}
	if c.SeedsPerCase <= 0 {
		c.SeedsPerCase = 3
	}
	if len(c.Policies) == 0 {
		c.Policies = AllPolicies
	}
}

// Comparison holds the outcomes of the policy-comparison experiment behind
// Figures 4 and 5.
type Comparison struct {
	Outcomes map[PolicyKind][]Outcome
}

// PolicyComparison runs every policy over every (job, short/long deadline,
// seed) combination — the experiment behind Fig. 4 (missed deadlines vs
// cluster impact) and Fig. 5 (completion-time CDFs). Grid points run on
// Env.GridParallel workers; per-run seeds derive from the same labels the
// serial implementation used, and the order-preserving merge keeps the
// per-policy outcome sequences (and thus the rendered tables) bit-identical
// at any parallelism.
func PolicyComparison(env *Env, cfg ComparisonConfig) (*Comparison, error) {
	cfg.fill()
	var tasks []execTask[Outcome]
	for _, job := range cfg.Jobs {
		for di := 0; di < 2; di++ {
			for s := 0; s < cfg.SeedsPerCase; s++ {
				for _, pol := range cfg.Policies {
					job, di, s, pol := job, di, s, pol
					tasks = append(tasks, execTask[Outcome]{
						key: fmt.Sprintf("fig45/%s/%d/%d/%s", job, di, s, pol),
						run: func(x *Exec) (Outcome, error) {
							short, long, err := env.Deadlines(job)
							if err != nil {
								return Outcome{}, err
							}
							deadline := []time.Duration{short, long}[di]
							return env.RunExec(x, SLORun{
								Job:      job,
								Deadline: deadline,
								Policy:   pol,
								Seed:     stats.DeriveSeed(env.Seed, "fig45", job, fmt.Sprint(deadline), fmt.Sprint(s)),
							})
						},
					})
				}
			}
		}
	}
	results, err := runGrid(env, tasks)
	if err != nil {
		return nil, err
	}
	out := &Comparison{Outcomes: map[PolicyKind][]Outcome{}}
	for _, o := range results {
		out.Outcomes[o.Policy] = append(out.Outcomes[o.Policy], o)
	}
	return out, nil
}

// PolicySummary is one point of Fig. 4.
type PolicySummary struct {
	Policy      PolicyKind
	Runs        int
	Missed      int
	MissedFrac  float64
	AboveOracle float64 // mean fraction of allocation above the oracle
	MedianRel   float64 // median completion/deadline
}

// Summaries computes the Fig. 4 points.
func (c *Comparison) Summaries() []PolicySummary {
	var out []PolicySummary
	for _, pol := range AllPolicies {
		runs := c.Outcomes[pol]
		if len(runs) == 0 {
			continue
		}
		s := PolicySummary{Policy: pol, Runs: len(runs)}
		var above, rels []float64
		for _, o := range runs {
			if !o.Met {
				s.Missed++
			}
			above = append(above, o.AboveOracle)
			rels = append(rels, o.RelCompletion)
		}
		s.MissedFrac = float64(s.Missed) / float64(len(runs))
		s.AboveOracle = stats.Mean(above)
		s.MedianRel = stats.Quantile(rels, 0.5)
		out = append(out, s)
	}
	return out
}

// RenderFig4 prints the Fig. 4 table: fraction of allocation above oracle
// (x-axis) vs fraction of missed deadlines (y-axis) per policy.
func (c *Comparison) RenderFig4() string {
	rows := make([][]string, 0, 4)
	for _, s := range c.Summaries() {
		rows = append(rows, []string{
			string(s.Policy),
			fmt.Sprint(s.Runs),
			pct(s.AboveOracle),
			pct(s.MissedFrac),
			fmt.Sprintf("%.2f", s.MedianRel),
		})
	}
	return renderTable(
		"Figure 4: missed deadlines vs allocation above oracle, per policy",
		[]string{"policy", "runs", "above-oracle", "missed", "median rel. completion"},
		rows)
}

// CDF returns the completion-time-relative-to-deadline CDF of one policy at
// the given quantiles.
func (c *Comparison) CDF(pol PolicyKind, quantiles []float64) []float64 {
	rels := make([]float64, 0, len(c.Outcomes[pol]))
	for _, o := range c.Outcomes[pol] {
		rels = append(rels, o.RelCompletion)
	}
	sort.Float64s(rels)
	out := make([]float64, len(quantiles))
	for i, q := range quantiles {
		out[i] = stats.QuantileSorted(rels, q)
	}
	return out
}

// RenderFig5 prints the Fig. 5 CDFs (completion time relative to the
// deadline) including the zoomed upper-right corner of the figure.
func (c *Comparison) RenderFig5() string {
	quantiles := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0}
	headers := []string{"CDF"}
	for _, pol := range AllPolicies {
		if len(c.Outcomes[pol]) > 0 {
			headers = append(headers, string(pol))
		}
	}
	var rows [][]string
	for qi, q := range quantiles {
		row := []string{pct(q)}
		for _, pol := range AllPolicies {
			if len(c.Outcomes[pol]) == 0 {
				continue
			}
			row = append(row, pct(c.CDF(pol, quantiles)[qi]))
		}
		rows = append(rows, row)
	}
	return renderTable(
		"Figure 5: CDF of job completion time relative to deadline (100% = deadline)",
		headers, rows)
}
