package eventq

// Differential tests pinning the calendar queue to the reference heap: with
// (time, seq) a strict total order, every workload must produce the same pop
// sequence under PolicyHeap, PolicyCalendar, and PolicyAuto (which promotes
// mid-run). The workloads target the calendar's weak spots: bucket-width
// re-estimation under random times, same-timestamp bursts that pile one
// bucket high (seq ordering inside a bucket), and monotone time advance
// (steady-state bucket rotation with jumpToMin skips over sparse regions).

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

// drive applies an identical op sequence to a policy-pinned queue and the
// reference heap, failing at the first divergence. gen(i) returns the next
// op: push at time `at` (do=0) or pop (do=1).
func drive(t *testing.T, pol Policy, ops int, gen func(i int, qLen int) (do int, at time.Duration)) {
	t.Helper()
	var q Queue[int]
	q.SetPolicy(pol)
	var ref refQueue
	for i := 0; i < ops; i++ {
		do, at := gen(i, q.Len())
		if do == 0 {
			q.Push(at, i)
			ref.Push(at, i)
			continue
		}
		at, v, ok := q.Pop()
		rat, rv, rok := ref.Pop()
		if at != rat || v != rv || ok != rok {
			t.Fatalf("policy %d diverged at op %d: got (%v, %d, %v), reference (%v, %d, %v)",
				pol, i, at, v, ok, rat, rv, rok)
		}
	}
	for {
		at, v, ok := q.Pop()
		rat, rv, rok := ref.Pop()
		if at != rat || v != rv || ok != rok {
			t.Fatalf("policy %d diverged during drain: got (%v, %d, %v), reference (%v, %d, %v)",
				pol, at, v, ok, rat, rv, rok)
		}
		if !ok {
			return
		}
	}
}

// policies every differential runs under: both pinned regimes plus the
// auto-promoting default (which crosses calendarPromoteLen mid-workload at
// the sizes below, so promotion itself is exercised).
var diffPolicies = []Policy{PolicyHeap, PolicyCalendar, PolicyAuto}

// TestCalendarDifferentialLarge grows the queue to ~10⁵ events and drains
// it, with randomized times spanning wide and narrow ranges — the scale the
// calendar exists for, far past the PolicyAuto promotion threshold.
func TestCalendarDifferentialLarge(t *testing.T) {
	const n = 100_000
	for shard := 0; shard < 4; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			seed := stats.DeriveSeed(2026, "calendar-diff-large", fmt.Sprint(shard))
			for _, pol := range diffPolicies {
				rng := stats.NewRNG(seed)
				// Grow phase: 3 pushes per pop until n events are queued,
				// then drain. Time range varies per shard to shift the
				// calendar's estimated bucket width.
				span := []int64{1 << 10, 1 << 20, 1 << 30, 1 << 34}[shard]
				pushed := 0
				drive(t, pol, 4*n/3, func(i, qLen int) (int, time.Duration) {
					if (rng.IntN(4) != 0 || qLen == 0) && pushed < n {
						pushed++
						return 0, time.Duration(rng.Int64N(span))
					}
					return 1, 0
				})
			}
		})
	}
}

// TestCalendarDifferentialBursts is the adversarial tie workload: long runs
// of pushes sharing one timestamp (so a single calendar bucket holds
// thousands of items whose order is decided purely by seq), interleaved
// with pops that straddle burst boundaries.
func TestCalendarDifferentialBursts(t *testing.T) {
	seed := stats.DeriveSeed(2026, "calendar-diff-bursts")
	for _, pol := range diffPolicies {
		rng := stats.NewRNG(seed)
		at := time.Duration(0)
		left := 0
		drive(t, pol, 60_000, func(i, qLen int) (int, time.Duration) {
			if left == 0 {
				// Next burst: a new shared timestamp — sometimes moving
				// backwards, sometimes far forward — and a burst length up
				// to 4096 (one bucket's worth of pure ties).
				at += time.Duration(rng.Int64N(1<<22) - 1<<20)
				if at < 0 {
					at = 0
				}
				left = 1 + rng.IntN(4096)
			}
			if rng.IntN(5) == 0 && qLen > 0 {
				return 1, 0
			}
			left--
			return 0, at
		})
	}
}

// TestCalendarDifferentialMonotone is the steady-state shape the simulator
// produces: the popped time never decreases and pushes always land at or
// after the current front, so the calendar rotates forward bucket by bucket
// (the jumpToMin fast-forward path runs constantly).
func TestCalendarDifferentialMonotone(t *testing.T) {
	seed := stats.DeriveSeed(2026, "calendar-diff-monotone")
	for _, pol := range diffPolicies {
		rng := stats.NewRNG(seed)
		now := time.Duration(0)
		drive(t, pol, 80_000, func(i, qLen int) (int, time.Duration) {
			if qLen >= 8192 || (qLen > 0 && rng.IntN(2) == 0) {
				return 1, 0
			}
			// Event horizons cluster near now with a sparse far tail, so
			// some buckets stay empty for many rotations.
			gap := time.Duration(rng.Int64N(int64(time.Second)))
			if rng.IntN(16) == 0 {
				gap = time.Duration(rng.Int64N(int64(time.Hour)))
			}
			now += gap / 256
			return 0, now + gap
		})
	}
}

// TestForcedCalendarMatchesReference re-runs the randomized container/heap
// differential with the calendar pinned on, so the whole workload — however
// small — is served by the bucketed structure.
func TestForcedCalendarMatchesReference(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := stats.NewRNG(seed)
		ops := 50 + int(opsRaw)%2000
		var q Queue[int]
		q.SetPolicy(PolicyCalendar)
		var ref refQueue
		for i := 0; i < ops; i++ {
			if rng.IntN(3) != 0 || q.Len() == 0 {
				at := time.Duration(rng.IntN(64)) * time.Millisecond
				q.Push(at, i)
				ref.Push(at, i)
				continue
			}
			at, v, ok := q.Pop()
			rat, rv, rok := ref.Pop()
			if at != rat || v != rv || ok != rok {
				return false
			}
		}
		for {
			at, v, ok := q.Pop()
			rat, rv, rok := ref.Pop()
			if at != rat || v != rv || ok != rok {
				return false
			}
			if !ok {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPolicySwitchMidstream flips a loaded queue between regimes and checks
// the pop sequence is unaffected: promote/demote preserve (at, seq) keys.
func TestPolicySwitchMidstream(t *testing.T) {
	seed := stats.DeriveSeed(2026, "calendar-diff-switch")
	rng := stats.NewRNG(seed)
	var q Queue[int]
	var ref refQueue
	for i := 0; i < 20_000; i++ {
		at := time.Duration(rng.Int64N(1 << 24))
		q.Push(at, i)
		ref.Push(at, i)
		if i%1024 == 1023 {
			if i%2048 == 2047 {
				q.SetPolicy(PolicyCalendar)
			} else {
				q.SetPolicy(PolicyHeap)
			}
		}
	}
	for {
		at, v, ok := q.Pop()
		rat, rv, rok := ref.Pop()
		if at != rat || v != rv || ok != rok {
			t.Fatalf("diverged after policy flips: got (%v, %d, %v), reference (%v, %d, %v)",
				at, v, ok, rat, rv, rok)
		}
		if !ok {
			return
		}
	}
}
