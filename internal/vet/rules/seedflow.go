package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/jockeysim/jockey/internal/vet"
)

// SeedFlow is a provenance (taint) analysis over seed values. The repo's
// reproduction guarantee requires every RNG in the deterministic packages to
// be seeded from the experiment's master seed through the stats derivation
// chain (DeriveSeed / DeriveSeedInt / SplitMix64 / ReseedSource); a literal
// seed, or a seed laundered through an untracked helper, silently forks the
// replay universe. The analysis classifies each seed expression as
//
//	derived  — traceable to stats.DeriveSeed/DeriveSeedInt, a tracked
//	           deriver helper, or a function parameter whose obligation is
//	           pushed to the callers (making the enclosing function itself a
//	           seed consumer);
//	dirty    — a literal, constant, or value produced by an untracked
//	           function.
//
// Struct-field and collection reads are a trusted boundary: the fill site
// carries the obligation instead (checked through Seed-suffixed composite
// literal keys). Seed-consumer and seed-deriver signatures are exported as
// facts, so the obligation follows calls across package boundaries: a
// helper in package A that feeds its parameter into rand.NewPCG makes every
// caller of A.Helper in a deterministic package subject to the check.
var SeedFlow = &vet.Analyzer{
	Name:      "seedflow",
	Doc:       "RNGs in the deterministic packages must be seeded from stats.DeriveSeed/DeriveSeedInt (transitively, across packages); literal and laundered seeds break replay",
	Run:       runSeedFlow,
	FactTypes: []vet.Fact{new(SeedConsumerFact), new(SeedDeriverFact)},
}

// SeedConsumerFact marks a function that feeds the given parameter indices
// into an RNG (directly or through further consumers): callers must pass
// derived seeds at those positions.
type SeedConsumerFact struct {
	Params []int `json:"params"`
}

func (*SeedConsumerFact) AFact() {}

// SeedDeriverFact marks a function whose result is a derived seed: Always
// unconditionally (it calls DeriveSeed internally), or otherwise exactly
// when the arguments at Params are themselves derived.
type SeedDeriverFact struct {
	Always bool  `json:"always,omitempty"`
	Params []int `json:"params,omitempty"`
}

func (*SeedDeriverFact) AFact() {}

const statsPath = ModulePath + "/internal/stats"

// intrinsicDerivers always return a derived seed.
var intrinsicDerivers = map[string]bool{
	statsPath + ".DeriveSeed":    true,
	statsPath + ".DeriveSeedInt": true,
}

// intrinsicPropagators return a derived seed exactly when the listed
// argument indices are derived.
var intrinsicPropagators = map[string][]int{
	statsPath + ".SplitMix64": {0},
}

// intrinsicConsumers are the RNG constructors and reseeders themselves: the
// listed argument indices are seeds and must be derived. Methods are keyed
// "pkg.Recv.Name".
var intrinsicConsumers = map[string][]int{
	"math/rand/v2.NewPCG":     {0, 1},
	"math/rand/v2.NewChaCha8": {0},
	"math/rand/v2.PCG.Seed":   {0, 1},
	"math/rand.NewSource":     {0},
	"math/rand.Rand.Seed":     {0},
}

// seedCls is the provenance lattice: dirty < param < derived. Joins across
// mixed expressions (a ^ b) keep the best operand — xor-folding a constant
// into a derived seed is still derived — while joins across alternatives
// (multiple assignments, multiple returns) keep the worst, because any of
// them may reach the use.
type seedCls int

const (
	clsDirty seedCls = iota
	clsParam
	clsDerived
	// clsSkip marks a recursive self-reference (z = mix(z)); it is the
	// identity of both joins — the other assignments decide.
	clsSkip
)

// seedVal is a classification plus its evidence: the parameters the value
// depends on (clsParam) or the reason it is dirty.
type seedVal struct {
	cls    seedCls
	params map[*types.Var]bool
	reason string
}

func dirty(reason string) seedVal { return seedVal{cls: clsDirty, reason: reason} }

// joinBest merges operands of one expression (best wins, param sets union).
func joinBest(a, b seedVal) seedVal {
	if a.cls == clsSkip {
		return b
	}
	if b.cls == clsSkip {
		return a
	}
	if a.cls < b.cls {
		a, b = b, a
	}
	if a.cls == clsParam && b.cls == clsParam {
		for v := range b.params {
			a.params[v] = true
		}
	}
	return a
}

// joinWorst merges alternative values that may each flow to the use (worst
// wins; param obligations accumulate so every alternative is covered).
func joinWorst(a, b seedVal) seedVal {
	if a.cls == clsSkip {
		return b
	}
	if b.cls == clsSkip {
		return a
	}
	if a.cls == clsParam && b.cls == clsParam {
		for v := range b.params {
			a.params[v] = true
		}
		return a
	}
	if a.cls > b.cls {
		return b
	}
	return a
}

// funcSummary is the deriver behavior of one function with a body.
type funcSummary struct {
	always bool
	params []int // result derived iff these params are derived; nil = not a deriver
	valid  bool
}

type seedflow struct {
	pass     *vet.Pass
	decls    map[*types.Func]*ast.FuncDecl
	visiting map[*types.Var]bool
	// summaries memoizes deriver classification per function; inProgress
	// breaks recursion (a self-recursive helper is not a tracked deriver).
	summaries  map[*types.Func]funcSummary
	inProgress map[*types.Func]bool
	// consumers maps local functions discovered to feed parameters into
	// RNGs to the parameter indices carrying the obligation.
	consumers map[*types.Func]map[int]bool
	reported  map[token.Pos]bool
	report    bool
}

func runSeedFlow(p *vet.Pass) error {
	a := &seedflow{
		pass:       p,
		decls:      map[*types.Func]*ast.FuncDecl{},
		visiting:   map[*types.Var]bool{},
		summaries:  map[*types.Func]funcSummary{},
		inProgress: map[*types.Func]bool{},
		consumers:  map[*types.Func]map[int]bool{},
		reported:   map[token.Pos]bool{},
		report:     isDeterministic(p.Pkg.Path()),
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				a.decls[fn] = fd
			}
		}
	}

	// Fixpoint: classifying a seed argument as parameter-dependent turns the
	// enclosing function into a consumer, whose own call sites must then be
	// rechecked. Diagnostics are position-deduplicated, so rescans are safe.
	for changed := true; changed; {
		changed = false
		for fn, fd := range a.decls {
			if a.scanBody(fn, fd) {
				changed = true
			}
		}
	}

	// Export facts so downstream packages inherit the obligations. Local
	// (unexported) consumers are still tracked above; the driver drops
	// un-addressable objects at encode time.
	for fn, idxs := range a.consumers {
		params := make([]int, 0, len(idxs))
		for i := range idxs {
			params = append(params, i)
		}
		sort.Ints(params)
		p.ExportObjectFact(fn, &SeedConsumerFact{Params: params})
	}
	for fn := range a.decls {
		if !fn.Exported() {
			continue
		}
		if sum := a.summary(fn); sum.valid {
			p.ExportObjectFact(fn, &SeedDeriverFact{Always: sum.always, Params: sum.params})
		}
	}
	return nil
}

// scanBody walks one function, classifying every seed argument at consumer
// call sites and every Seed-suffixed composite-literal field. It returns
// whether the consumer set grew.
func (a *seedflow) scanBody(fn *types.Func, fd *ast.FuncDecl) (changed bool) {
	reportHere := a.report && !vet.IsTestFile(a.pass.Fset, fd.Pos())
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			callee := a.staticCallee(e)
			if callee == nil {
				return true
			}
			for _, idx := range a.consumerParams(callee) {
				args := e.Args
				if idx >= len(args) {
					continue
				}
				if a.checkSeedArg(fn, args[idx], callee.Name(), reportHere) {
					changed = true
				}
			}
		case *ast.CompositeLit:
			// Config{Seed: x} and friends: the fill site of a seed-carrying
			// field owes a derived value, because field reads downstream are
			// trusted.
			for _, el := range e.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !strings.HasSuffix(key.Name, "Seed") {
					continue
				}
				if t := a.pass.Info.TypeOf(kv.Value); t == nil || !isIntegerType(t) {
					continue
				}
				if a.checkSeedArg(fn, kv.Value, key.Name+" field", reportHere) {
					changed = true
				}
			}
			if reportHere {
				a.checkUnseededState(e)
			}
		}
		return true
	})
	return changed
}

// checkSeedArg classifies one seed expression, reporting dirty values and
// promoting parameter-dependent ones into consumer obligations on fn.
func (a *seedflow) checkSeedArg(fn *types.Func, arg ast.Expr, sink string, reportHere bool) (changed bool) {
	v := a.classify(arg, fn)
	switch v.cls {
	case clsDirty:
		if reportHere && !a.reported[arg.Pos()] {
			a.reported[arg.Pos()] = true
			a.pass.Reportf(arg.Pos(), "seed reaching %s is %s; derive it from the master seed via stats.DeriveSeed/DeriveSeedInt", sink, v.reason)
		}
	case clsParam:
		sig := fn.Type().(*types.Signature)
		for pv := range v.params {
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i) != pv {
					continue
				}
				if a.consumers[fn] == nil {
					a.consumers[fn] = map[int]bool{}
				}
				if !a.consumers[fn][i] {
					a.consumers[fn][i] = true
					changed = true
				}
			}
		}
	}
	return changed
}

// checkUnseededState flags zero-state generator construction: a composite
// literal of rand.PCG/ChaCha8 starts at state 0 — an unseeded generator
// that every replay shares, defeating per-run seed derivation.
func (a *seedflow) checkUnseededState(lit *ast.CompositeLit) {
	t := a.pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	if (pkg == "math/rand/v2" && (name == "PCG" || name == "ChaCha8")) && !a.reported[lit.Pos()] {
		a.reported[lit.Pos()] = true
		a.pass.Reportf(lit.Pos(), "zero-value %s.%s is an unseeded generator; construct it via stats.NewSource with a derived seed", pkg, name)
	}
}

// consumerParams returns the seed-parameter indices of callee, from the
// intrinsic table, the local fixpoint, or an imported cross-package fact.
func (a *seedflow) consumerParams(callee *types.Func) []int {
	if idxs, ok := intrinsicConsumers[funcKey(callee)]; ok {
		return idxs
	}
	if idxs := a.consumers[callee]; idxs != nil {
		out := make([]int, 0, len(idxs))
		for i := range idxs {
			out = append(out, i)
		}
		sort.Ints(out)
		return out
	}
	var fact SeedConsumerFact
	if a.pass.ImportObjectFact(callee, &fact) {
		return fact.Params
	}
	return nil
}

// summary computes (memoized) whether fn behaves as a seed deriver: a
// single-integer-result function whose every return value is derived, or
// derived conditionally on parameters.
func (a *seedflow) summary(fn *types.Func) funcSummary {
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	if a.inProgress[fn] {
		return funcSummary{}
	}
	a.inProgress[fn] = true
	defer func() { a.inProgress[fn] = false }()

	s := funcSummary{}
	fd := a.decls[fn]
	sig, _ := fn.Type().(*types.Signature)
	if fd == nil || sig == nil || sig.Results().Len() != 1 || !isIntegerType(sig.Results().At(0).Type()) {
		a.summaries[fn] = s
		return s
	}
	var agg *seedVal
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested closures return to their own callers
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		v := a.classify(ret.Results[0], fn)
		if agg == nil {
			agg = &v
		} else {
			j := joinWorst(*agg, v)
			agg = &j
		}
		return true
	})
	if agg != nil {
		switch agg.cls {
		case clsDerived:
			s = funcSummary{always: true, valid: true}
		case clsParam:
			var idxs []int
			for pv := range agg.params {
				for i := 0; i < sig.Params().Len(); i++ {
					if sig.Params().At(i) == pv {
						idxs = append(idxs, i)
					}
				}
			}
			sort.Ints(idxs)
			s = funcSummary{params: idxs, valid: len(idxs) > 0}
		}
	}
	a.summaries[fn] = s
	return s
}

// classify computes the provenance of one seed expression within fn.
func (a *seedflow) classify(e ast.Expr, fn *types.Func) seedVal {
	// Constants (literals, consts, folded expressions) are the canonical
	// violation: the same seed in every run and every replica.
	if tv, ok := a.pass.Info.Types[e]; ok && tv.Value != nil {
		return dirty("a literal/constant")
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return a.classify(x.X, fn)
	case *ast.CallExpr:
		return a.classifyCall(x, fn)
	case *ast.BinaryExpr:
		return joinBest(a.classify(x.X, fn), a.classify(x.Y, fn))
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return dirty("an address-of expression, not a seed")
		}
		return a.classify(x.X, fn)
	case *ast.StarExpr:
		return seedVal{cls: clsDerived} // pointer deref: filler's obligation
	case *ast.IndexExpr:
		return seedVal{cls: clsDerived} // collection read: trusted boundary
	case *ast.SelectorExpr:
		return a.classifySelector(x, fn)
	case *ast.Ident:
		return a.classifyIdent(x, fn)
	}
	return dirty("not traceable to a stats seed derivation")
}

func (a *seedflow) classifyCall(call *ast.CallExpr, fn *types.Func) seedVal {
	// Conversions (uint64(x)) preserve provenance.
	if tv, ok := a.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return a.classify(call.Args[0], fn)
		}
		return dirty("an untraceable conversion")
	}
	callee := a.staticCallee(call)
	if callee == nil {
		return dirty("produced by an indirect call")
	}
	key := funcKey(callee)
	if intrinsicDerivers[key] {
		return seedVal{cls: clsDerived}
	}
	if idxs, ok := intrinsicPropagators[key]; ok {
		return a.classifyArgJoin(call, idxs, fn)
	}
	// Cross-package deriver facts, then local summaries.
	var fact SeedDeriverFact
	if a.pass.ImportObjectFact(callee, &fact) {
		if fact.Always {
			return seedVal{cls: clsDerived}
		}
		return a.classifyArgJoin(call, fact.Params, fn)
	}
	if sum := a.summary(callee); sum.valid {
		if sum.always {
			return seedVal{cls: clsDerived}
		}
		return a.classifyArgJoin(call, sum.params, fn)
	}
	return dirty("laundered through " + callee.Name() + ", which is not a tracked seed deriver")
}

// classifyArgJoin classifies a propagating call: the result is as derived as
// the worst of the seed-relevant arguments.
func (a *seedflow) classifyArgJoin(call *ast.CallExpr, idxs []int, fn *types.Func) seedVal {
	var agg *seedVal
	for _, i := range idxs {
		if i >= len(call.Args) {
			continue
		}
		v := a.classify(call.Args[i], fn)
		if agg == nil {
			agg = &v
		} else {
			j := joinWorst(*agg, v)
			agg = &j
		}
	}
	if agg == nil {
		return dirty("a propagating deriver called without its seed argument")
	}
	return *agg
}

func (a *seedflow) classifySelector(sel *ast.SelectorExpr, fn *types.Func) seedVal {
	if s, ok := a.pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		// Struct-field read: the Seed-field fill-site check owns this.
		return seedVal{cls: clsDerived}
	}
	obj := a.pass.Info.Uses[sel.Sel]
	switch obj.(type) {
	case *types.Const:
		return dirty("a constant")
	case *types.Var:
		return dirty("a package-level variable, not a derived seed")
	}
	return dirty("not traceable to a stats seed derivation")
}

func (a *seedflow) classifyIdent(id *ast.Ident, fn *types.Func) seedVal {
	obj := a.pass.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return dirty("not a seed-carrying variable")
	}
	if v.IsField() {
		return seedVal{cls: clsDerived}
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return seedVal{cls: clsParam, params: map[*types.Var]bool{v: true}}
		}
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return dirty("a package-level variable, not a derived seed")
	}
	// Local variable: flow-insensitive join over every assignment to it in
	// the function body. No visible assignment (closure capture, range
	// variable) is conservatively dirty. Self-referential assignments
	// (z = mix(z)) classify as clsSkip so the other assignments decide.
	fd := a.decls[fn]
	if fd == nil {
		return dirty("assigned outside the analyzed function")
	}
	if a.visiting[v] {
		return seedVal{cls: clsSkip}
	}
	a.visiting[v] = true
	defer delete(a.visiting, v)
	var agg *seedVal
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || a.pass.Info.ObjectOf(lid) != v {
					continue
				}
				var val seedVal
				if len(st.Rhs) == len(st.Lhs) {
					val = a.classify(st.Rhs[i], fn)
				} else {
					val = dirty("unpacked from a multi-value call")
				}
				if agg == nil {
					agg = &val
				} else {
					j := joinWorst(*agg, val)
					agg = &j
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if a.pass.Info.ObjectOf(name) != v || i >= len(st.Values) {
					continue
				}
				val := a.classify(st.Values[i], fn)
				if agg == nil {
					agg = &val
				} else {
					j := joinWorst(*agg, val)
					agg = &j
				}
			}
		}
		return true
	})
	if agg == nil || agg.cls == clsSkip {
		return dirty("a variable with no traceable assignment")
	}
	return *agg
}

// staticCallee resolves a call to its static *types.Func, if any.
func (a *seedflow) staticCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch f := call.Fun.(type) {
	case *ast.Ident:
		obj = a.pass.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = a.pass.Info.Uses[f.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := f.X.(*ast.Ident); ok {
			obj = a.pass.Info.Uses[id]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcKey renders a function as "pkg.Name" or "pkg.Recv.Name" for the
// intrinsic tables.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key += named.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
