package sim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// fixedProfile builds a deterministic two-stage job: 8 map tasks of 10s each
// feeding a 2-task barrier of 20s each, with no queueing or failures.
func fixedProfile(t testing.TB) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder("fixed").
		Stage("map", 8).
		Stage("reduce", 2).
		Edge("map", "reduce", dag.AllToAll).
		MustBuild()
	return profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 20 * time.Second}},
	})
}

func TestRunDeterministicLatency(t *testing.T) {
	p := fixedProfile(t)
	cases := []struct {
		alloc int
		want  time.Duration
	}{
		{8, 30 * time.Second},  // one map wave + reduce
		{4, 40 * time.Second},  // two map waves + reduce
		{2, 60 * time.Second},  // four map waves + reduce
		{1, 120 * time.Second}, // fully serial: 8*10 + 2*20
		{100, 30 * time.Second},
	}
	for _, c := range cases {
		tr, err := Run(Config{Profile: p, Alloc: c.alloc, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Completion != c.want {
			t.Errorf("alloc %d: completion %v, want %v", c.alloc, tr.Completion, c.want)
		}
		if got := len(tr.Events); got != 10 {
			t.Errorf("alloc %d: %d events, want 10", c.alloc, got)
		}
	}
}

func TestBarrierEnforced(t *testing.T) {
	p := fixedProfile(t)
	tr, err := Run(Config{Profile: p, Alloc: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lastMapEnd, firstReduceStart time.Duration
	for _, e := range tr.Events {
		if e.Stage == 0 && e.Ended > lastMapEnd {
			lastMapEnd = e.Ended
		}
	}
	firstReduceStart = tr.Completion
	for _, e := range tr.Events {
		if e.Stage == 1 && e.Started < firstReduceStart {
			firstReduceStart = e.Started
		}
	}
	if firstReduceStart < lastMapEnd {
		t.Errorf("reduce started at %v before map finished at %v", firstReduceStart, lastMapEnd)
	}
}

func TestOneToOnePipelines(t *testing.T) {
	// With one-to-one edges a consumer task may start before the whole
	// producer stage completes.
	job := dag.NewBuilder("pipe").
		Stage("a", 4).
		Stage("b", 4).
		Edge("a", "b", dag.OneToOne).
		MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	tr, err := Run(Config{Profile: p, Alloc: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// At allocation 3 the first wave (a0..a2) finishes at 10s, making b0..b2
	// ready; the second wave mixes a3 with b tasks, so some b task must
	// start before the last a task ends. A barrier would forbid that.
	var lastAEnd time.Duration
	firstBStart := tr.Completion
	for _, e := range tr.Events {
		if e.Stage == 0 && e.Ended > lastAEnd {
			lastAEnd = e.Ended
		}
		if e.Stage == 1 && e.Started < firstBStart {
			firstBStart = e.Started
		}
	}
	if firstBStart >= lastAEnd {
		t.Errorf("one-to-one consumer did not pipeline: firstB %v >= lastA %v", firstBStart, lastAEnd)
	}
}

func TestSameSeedSameTrace(t *testing.T) {
	job := dag.NewBuilder("rand").
		Stage("a", 20).
		Stage("b", 5).
		Edge("a", "b", dag.AllToAll).
		MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(5*time.Second, 20*time.Second),
			Queue: stats.Exponential{MeanValue: time.Second}, FailureProb: 0.1},
		{Exec: stats.LognormalFromMedian(10*time.Second, 30*time.Second)},
	})
	a, err := Run(Config{Profile: p, Alloc: 7, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Profile: p, Alloc: 7, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.Completion != b.Completion || len(a.Events) != len(b.Events) {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d",
			a.Completion, len(a.Events), b.Completion, len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c, err := Run(Config{Profile: p, Alloc: 7, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if c.Completion == a.Completion && len(c.Events) == len(a.Events) {
		// Completion collision is possible but extremely unlikely with
		// continuous distributions.
		t.Error("different seed produced identical run")
	}
}

func TestFailuresAreRetriedAndRecorded(t *testing.T) {
	job := dag.NewBuilder("flaky").Stage("only", 50).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}, FailureProb: 0.3},
	})
	tr, err := Run(Config{Profile: p, Alloc: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	succ := 0
	for _, e := range tr.Events {
		if e.Failed {
			failures++
			if e.ExecTime() >= 10*time.Second {
				t.Errorf("failed attempt ran full service time: %v", e.ExecTime())
			}
		} else {
			succ++
		}
	}
	if succ != 50 {
		t.Errorf("successes = %d, want 50", succ)
	}
	if failures == 0 {
		t.Error("expected some failures at p=0.3")
	}
	if got := tr.FailureRate(0); got == 0 {
		t.Error("trace failure rate should be positive")
	}
}

func TestDisableFailures(t *testing.T) {
	job := dag.NewBuilder("flaky").Stage("only", 50).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}, FailureProb: 0.5},
	})
	tr, err := Run(Config{Profile: p, Alloc: 10, Seed: 5, DisableFailures: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 50 {
		t.Errorf("events = %d, want exactly 50 with failures disabled", len(tr.Events))
	}
}

func TestMaxAttemptsBoundsRetries(t *testing.T) {
	job := dag.NewBuilder("doomed").Stage("only", 3).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: time.Second}, FailureProb: 0.999},
	})
	tr, err := Run(Config{Profile: p, Alloc: 3, Seed: 1, MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.Attempt >= 5 {
			t.Errorf("attempt %d exceeds MaxAttempts", e.Attempt)
		}
	}
	// The job must still complete (last attempt always succeeds).
	if tr.Completion == 0 {
		t.Error("job did not complete")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil || !strings.Contains(err.Error(), "nil profile") {
		t.Errorf("nil profile: %v", err)
	}
	p := fixedProfile(t)
	if _, err := Run(Config{Profile: p, Alloc: 0}); err == nil {
		t.Error("zero alloc must fail")
	}
}

// TestInitialFracDoneLengthMismatch: a fraction vector that is not parallel
// to the plan's stages must be rejected up front — silently truncating (or
// ignoring the tail of) the vector would start the simulation from a state
// the caller never described.
func TestInitialFracDoneLengthMismatch(t *testing.T) {
	p := fixedProfile(t) // two stages
	cases := []struct {
		name  string
		fracs []float64
		ok    bool
	}{
		{name: "nil means fresh start", fracs: nil, ok: true},
		{name: "matching length", fracs: []float64{0.5, 0}, ok: true},
		{name: "too short", fracs: []float64{0.5}, ok: false},
		{name: "empty but non-nil", fracs: []float64{}, ok: false},
		{name: "too long", fracs: []float64{0.5, 0, 1}, ok: false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr, err := Run(Config{Profile: p, Alloc: 4, Seed: 1, InitialFracDone: c.fracs})
			if c.ok {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if tr.Completion <= 0 {
					t.Fatalf("completion = %v", tr.Completion)
				}
				return
			}
			if err == nil {
				t.Fatal("length mismatch must fail")
			}
			if !strings.Contains(err.Error(), "InitialFracDone") {
				t.Fatalf("error %q does not name InitialFracDone", err)
			}
		})
	}
}

// TestInitialFracDoneResume: a matching vector actually shortens the run —
// the validated path must still apply the pre-completed state.
func TestInitialFracDoneResume(t *testing.T) {
	p := fixedProfile(t)
	fresh, err := Run(Config{Profile: p, Alloc: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(Config{Profile: p, Alloc: 4, Seed: 1, InitialFracDone: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Completion >= fresh.Completion {
		t.Errorf("resumed run (%v) not shorter than fresh run (%v)", resumed.Completion, fresh.Completion)
	}
}

func TestSampling(t *testing.T) {
	p := fixedProfile(t)
	var snaps []Snapshot
	_, err := Run(Config{
		Profile: p, Alloc: 2, Seed: 1,
		SampleEvery: 5 * time.Second,
		OnSample:    func(s Snapshot) { snaps = append(snaps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no samples")
	}
	// Samples are 5s apart and fractions are monotone.
	for i, s := range snaps {
		if want := time.Duration(i+1) * 5 * time.Second; s.Time != want {
			t.Errorf("sample %d at %v, want %v", i, s.Time, want)
		}
		if s.Running < 0 || s.Running > 2 {
			t.Errorf("running = %d out of [0,2]", s.Running)
		}
		if i > 0 {
			for st := range s.FracDone {
				if s.FracDone[st] < snaps[i-1].FracDone[st] {
					t.Errorf("stage %d fraction decreased", st)
				}
			}
		}
	}
	last := snaps[len(snaps)-1]
	if last.FracDone[0] < 1 {
		t.Errorf("map stage should be complete near the end: %v", last.FracDone)
	}
}

func TestRunInfinite(t *testing.T) {
	p := fixedProfile(t)
	tr, err := RunInfinite(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Completion != 30*time.Second {
		t.Errorf("infinite-alloc completion %v, want critical path 30s", tr.Completion)
	}
}

func TestEstimateLatency(t *testing.T) {
	p := fixedProfile(t)
	ds, err := EstimateLatency(p, 4, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 {
		t.Fatalf("len = %d", len(ds))
	}
	for i, d := range ds {
		if d != 40*time.Second {
			t.Errorf("run %d: %v, want 40s (deterministic job)", i, d)
		}
	}
	if _, err := EstimateLatency(p, 0, 1, 1); err == nil {
		t.Error("alloc 0 must propagate error")
	}
}

// TestMoreTokensNeverSlowerProperty checks the core monotonicity the control
// loop relies on: for a failure-free job, adding tokens never increases
// completion time.
func TestMoreTokensNeverSlowerProperty(t *testing.T) {
	job := dag.NewBuilder("mono").
		Stage("a", 30).
		Stage("b", 10).
		Stage("c", 5).
		Edge("a", "b", dag.OneToOne).
		Edge("b", "c", dag.AllToAll).
		MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(4*time.Second, 12*time.Second)},
		{Exec: stats.LognormalFromMedian(8*time.Second, 20*time.Second)},
		{Exec: stats.LognormalFromMedian(6*time.Second, 9*time.Second)},
	})
	f := func(seed uint64, rawA, rawB uint8) bool {
		a := 1 + int(rawA)%30
		b := 1 + int(rawB)%30
		if a > b {
			a, b = b, a
		}
		if a == b {
			b++
		}
		// Use the same seed: allocations consume random numbers in different
		// orders, so compare medians of a few runs instead of single runs.
		la, err := EstimateLatency(p, a, 5, seed)
		if err != nil {
			return false
		}
		lb, err := EstimateLatency(p, b, 5, seed)
		if err != nil {
			return false
		}
		// Allow 10% tolerance for sampling noise.
		return float64(lb[2]) <= float64(la[2])*1.10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQueueDelayCountedInTrace(t *testing.T) {
	job := dag.NewBuilder("q").Stage("only", 4).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}, Queue: stats.Point{V: 2 * time.Second}},
	})
	tr, err := Run(Config{Profile: p, Alloc: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.QueueTime() != 2*time.Second {
			t.Errorf("queue time %v, want 2s init delay", e.QueueTime())
		}
	}
	if tr.Completion != 12*time.Second {
		t.Errorf("completion %v, want 12s", tr.Completion)
	}
}
