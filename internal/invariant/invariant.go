// Package invariant is the single sanctioned panic path for the library
// packages. The determinism contract (DESIGN.md, "Determinism contract")
// forbids bare panic calls outside this package — the jockeyvet panicpath
// analyzer enforces that — so every internal invariant failure funnels
// through here and always carries enough context to identify the job,
// stage, or value that violated it.
//
// These helpers are for programming errors ("cannot happen" states and
// misuse of Must* constructors), not for recoverable conditions: anything a
// caller could reasonably handle must be a returned error instead.
package invariant

import "fmt"

// Violation is the value carried by every panic raised from this package.
// Recovery code can detect internal invariant failures with
// errors.As(recover().(error), *(*Violation)) style checks, and the wrapped
// cause (if any) stays inspectable via Unwrap.
type Violation struct {
	// Msg describes the violated invariant, with context formatted in.
	Msg string
	// Err is the underlying error for NoErr violations, nil otherwise.
	Err error
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Err != nil {
		return v.Msg + ": " + v.Err.Error()
	}
	return v.Msg
}

// Unwrap exposes the underlying cause to errors.Is/errors.As.
func (v *Violation) Unwrap() error { return v.Err }

// Assertf panics with a *Violation when cond is false. The format string
// must carry the identity of whatever violated the invariant (job, stage,
// value); a zero-argument call costs nothing beyond the condition check.
func Assertf(cond bool, format string, args ...any) {
	if cond {
		return
	}
	panic(&Violation{Msg: fmt.Sprintf(format, args...)})
}

// NoErr panics with a *Violation wrapping err when err is non-nil. It is
// the Must* constructor escape hatch: use it where an error return is
// impossible by construction and an error therefore means a bug in the
// caller.
func NoErr(err error, format string, args ...any) {
	if err == nil {
		return
	}
	panic(&Violation{Msg: fmt.Sprintf(format, args...), Err: err})
}
