package workload

import (
	"fmt"
	"reflect"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// BackgroundConfig describes the non-SLO jobs that share the cluster and
// make spare capacity fluctuate. Arrivals are Poisson; sizes, durations and
// guarantees vary per job.
type BackgroundConfig struct {
	// MeanInterarrival between job submissions (default 3 minutes).
	MeanInterarrival time.Duration
	// Horizon: jobs arrive in [0, Horizon) (default 2 hours).
	Horizon time.Duration
	// TasksLo/TasksHi bound the per-job task count (default 50..400).
	TasksLo, TasksHi int
	// TaskDuration is the per-task service-time distribution
	// (default lognormal, median 20s / p90 90s).
	TaskDuration stats.Distribution
	// GuaranteeLo/GuaranteeHi bound each job's guaranteed tokens
	// (default 2..8).
	GuaranteeLo, GuaranteeHi int
	// BarrierProb is the chance a background job carries a reduce stage
	// (default 0.5), adding barrier-induced burstiness.
	BarrierProb float64
	// BurstPeriod and BurstAmplitude modulate the arrival rate with a
	// square wave: during the busy half of each period arrivals come
	// BurstAmplitude× faster, during the quiet half BurstAmplitude× slower.
	// This makes spare capacity fluctuate the way the paper observes (§2.4:
	// 5%–80% of an SLO job's vertices ran on spare tokens depending on the
	// moment). Defaults: 40 minutes, 3×. Amplitude 1 disables bursts.
	BurstPeriod    time.Duration
	BurstAmplitude float64
	// Seed drives the generator.
	Seed uint64
}

func (c *BackgroundConfig) fill() error {
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 3 * time.Minute
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Hour
	}
	if c.TasksLo == 0 && c.TasksHi == 0 {
		c.TasksLo, c.TasksHi = 50, 400
	}
	if c.TasksLo < 1 || c.TasksHi < c.TasksLo {
		return fmt.Errorf("workload: bad background task bounds [%d, %d]", c.TasksLo, c.TasksHi)
	}
	if c.TaskDuration == nil {
		c.TaskDuration = stats.LognormalFromMedian(20*time.Second, 90*time.Second)
	}
	if c.GuaranteeLo == 0 && c.GuaranteeHi == 0 {
		c.GuaranteeLo, c.GuaranteeHi = 2, 8
	}
	if c.GuaranteeLo < 1 || c.GuaranteeHi < c.GuaranteeLo {
		return fmt.Errorf("workload: bad background guarantee bounds [%d, %d]", c.GuaranteeLo, c.GuaranteeHi)
	}
	if c.BarrierProb == 0 {
		c.BarrierProb = 0.5
	}
	if c.BarrierProb < 0 || c.BarrierProb > 1 {
		return fmt.Errorf("workload: barrier probability %v out of [0,1]", c.BarrierProb)
	}
	if c.BurstPeriod <= 0 {
		c.BurstPeriod = 40 * time.Minute
	}
	if c.BurstAmplitude == 0 {
		c.BurstAmplitude = 3
	}
	if c.BurstAmplitude < 1 {
		return fmt.Errorf("workload: burst amplitude %v must be >= 1", c.BurstAmplitude)
	}
	return nil
}

// SubmitBackground pre-schedules a fleet of background jobs on the cluster
// and returns how many were submitted. Call before cluster.Run.
func SubmitBackground(c *cluster.Cluster, cfg BackgroundConfig) (int, error) {
	return submitBackground(c, cfg, nil)
}

// BackgroundPool caches background-job plans and profiles across fleets, so
// repeated runs over the same BackgroundConfig (an experiment grid worker
// re-simulating the same environment hundreds of times) stop rebuilding a
// DAG and a profile per job. Cached jobs carry canonical shape-derived names
// ("bg-120", "bgb-120") instead of the per-fleet bg0000 numbering; cluster
// dynamics are name-independent (per-job randomness derives from the
// submission id, never the name), so pooled and fresh fleets replay
// bit-identically — TestBackgroundPoolBitIdentical pins this.
//
// Reusing plans also makes every background jobRun poolable by a
// cluster.Engine, which keys its arenas on plan identity.
//
// A pool assumes a fixed task-duration distribution: if a fleet arrives with
// a different TaskDuration, the cache is discarded and rebuilt for the new
// one. A pool is not safe for concurrent use (one per grid worker).
type BackgroundPool struct {
	taskDur stats.Distribution
	plain   map[int]*profile.Profile // key: map-stage task count
	barrier map[int]*profile.Profile
}

// NewBackgroundPool returns an empty plan/profile pool.
func NewBackgroundPool() *BackgroundPool {
	return &BackgroundPool{
		plain:   make(map[int]*profile.Profile),
		barrier: make(map[int]*profile.Profile),
	}
}

// SubmitBackground is SubmitBackground with the pool's cached profiles.
func (p *BackgroundPool) SubmitBackground(c *cluster.Cluster, cfg BackgroundConfig) (int, error) {
	return submitBackground(c, cfg, p)
}

// Shape returns the pooled canonical profile for one background job shape:
// `tasks` map tasks, optionally followed by an all-to-all reduce stage
// (barrier), with cfg's task-duration distribution. The profile carries the
// canonical shape-derived name ("bg-N" / "bgb-N") and a stable plan pointer,
// so repeated calls share one *dag.Job and cluster engines can pool arenas
// for it. The fleet arbiter draws its SLO-job shapes from here.
func (p *BackgroundPool) Shape(cfg BackgroundConfig, tasks int, barrier bool) (*profile.Profile, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if tasks < 1 {
		return nil, fmt.Errorf("workload: shape needs at least one task, got %d", tasks)
	}
	return p.profileFor(&cfg, tasks, barrier)
}

// profileFor returns the pooled profile for a job shape, building and
// caching it on first use.
func (p *BackgroundPool) profileFor(cfg *BackgroundConfig, tasks int, barrier bool) (*profile.Profile, error) {
	// DeepEqual, not ==: Distribution implementations may be non-comparable
	// (empirical distributions hold slices), which would make == panic.
	if p.taskDur == nil || !reflect.DeepEqual(p.taskDur, cfg.TaskDuration) {
		clear(p.plain)
		clear(p.barrier)
		p.taskDur = cfg.TaskDuration
	}
	cache := p.plain
	if barrier {
		cache = p.barrier
	}
	if prof, ok := cache[tasks]; ok {
		return prof, nil
	}
	var name string
	if barrier {
		name = fmt.Sprintf("bgb-%d", tasks)
	} else {
		name = fmt.Sprintf("bg-%d", tasks)
	}
	prof, err := buildBackgroundProfile(cfg, name, tasks, barrier)
	if err != nil {
		return nil, err
	}
	cache[tasks] = prof
	return prof, nil
}

// buildBackgroundProfile constructs one background job's plan and profile.
// It draws nothing from any RNG: callers can cache its result without
// shifting the fleet generator's stream.
func buildBackgroundProfile(cfg *BackgroundConfig, name string, tasks int, barrier bool) (*profile.Profile, error) {
	if barrier {
		reducers := tasks / 8
		if reducers < 1 {
			reducers = 1
		}
		job := dag.NewBuilder(name).
			Stage("map", tasks).
			Stage("reduce", reducers).
			Edge("map", "reduce", dag.AllToAll).
			MustBuild()
		return profile.New(job, []profile.StageProfile{
			{Exec: cfg.TaskDuration, Queue: DefaultQueueDelay(), FailureProb: 0.01},
			{Exec: stats.Scaled{Base: cfg.TaskDuration, Factor: 2}, Queue: DefaultQueueDelay(), FailureProb: 0.01},
		})
	}
	job := dag.NewBuilder(name).Stage("map", tasks).MustBuild()
	return profile.New(job, []profile.StageProfile{
		{Exec: cfg.TaskDuration, Queue: DefaultQueueDelay(), FailureProb: 0.01},
	})
}

func submitBackground(c *cluster.Cluster, cfg BackgroundConfig, pool *BackgroundPool) (int, error) {
	if err := cfg.fill(); err != nil {
		return 0, err
	}
	rng := stats.NewRNG(stats.DeriveSeed(cfg.Seed, "background"))
	n := 0
	for at := time.Duration(0); at < cfg.Horizon; {
		gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		if cfg.BurstAmplitude > 1 {
			if (at/cfg.BurstPeriod)%2 == 0 {
				gap = time.Duration(float64(gap) / cfg.BurstAmplitude)
			} else {
				gap = time.Duration(float64(gap) * cfg.BurstAmplitude)
			}
		}
		at += gap
		if at >= cfg.Horizon {
			break
		}
		tasks := cfg.TasksLo + rng.IntN(cfg.TasksHi-cfg.TasksLo+1)
		barrier := rng.Float64() < cfg.BarrierProb
		var (
			p   *profile.Profile
			err error
		)
		if pool != nil {
			p, err = pool.profileFor(&cfg, tasks, barrier)
		} else {
			p, err = buildBackgroundProfile(&cfg, fmt.Sprintf("bg%04d", n), tasks, barrier)
		}
		if err != nil {
			return n, err
		}
		guarantee := cfg.GuaranteeLo + rng.IntN(cfg.GuaranteeHi-cfg.GuaranteeLo+1)
		if _, err := c.Submit(cluster.JobConfig{
			Profile:   p,
			Guarantee: guarantee,
			Start:     at,
		}); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
