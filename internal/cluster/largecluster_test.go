package cluster

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// largeScale sizes a Cosmos-like replay: thousands of machines, a hundred
// thousand concurrent tasks, a mix of big background work and one tracked
// SLO job. The same shape is used at two sizes: cosmosScale is the paper's
// regime (ROADMAP item 3), midScale is small enough that pre-optimization
// engines can replay it in seconds, so trend lines stay comparable.
type largeScale struct {
	machines, slots            int
	bgTasks, bg2Tasks          int
	fgMap, fgReduce            int
	bgGuar, bg2Guar, fgGuar    int
	mtbf                       time.Duration
}

// cosmosScale: 10k machines × 10 slots = 100k tokens; guarantees alone pin
// 95k tasks and spare redistribution fills the rest, so the replay sustains
// ≥1e5 concurrent tasks (the benchmark reports the measured peak).
var cosmosScale = largeScale{
	machines: 10000, slots: 10,
	bgTasks: 120000, bg2Tasks: 60000,
	fgMap: 20000, fgReduce: 4000,
	bgGuar: 50000, bg2Guar: 25000, fgGuar: 20000,
	mtbf: 2000 * time.Hour,
}

// midScale is cosmosScale shrunk 10x along both axes.
var midScale = largeScale{
	machines: 1000, slots: 10,
	fgMap: 2000, fgReduce: 400,
	bgTasks: 12000, bg2Tasks: 6000,
	bgGuar: 5000, bg2Guar: 2500, fgGuar: 2000,
	mtbf: 200 * time.Hour,
}

// hugeScale is the arrival-burst regime (ROADMAP item 3's leftover): 25k
// machines × 20 slots = 5e5 tokens, with enough queued background work that
// the cluster stays saturated — ≥5e5 concurrent tasks once the burst lands.
// Dispatching each admission wave used to push its task-end events one sift
// at a time; this scale is where PushBatch's amortization is measured.
var hugeScale = largeScale{
	machines: 25000, slots: 20,
	fgMap: 100000, fgReduce: 20000,
	bgTasks: 600000, bg2Tasks: 300000,
	bgGuar: 250000, bg2Guar: 125000, fgGuar: 100000,
	mtbf: 5000 * time.Hour,
}

func (ls largeScale) config() Config {
	return Config{
		Machines:        ls.machines,
		SlotsPerMachine: ls.slots,
		MachineMTBF:     ls.mtbf,
		MachineRecovery: stats.Point{V: 2 * time.Minute},
		Seed:            1848,
	}
}

// largeProfiles builds the three job profiles once; the *dag.Job identities
// are stable across runs so Engine arena pooling engages exactly as it does
// in the experiment grids.
type largeProfiles struct {
	bg, bg2, fg *profile.Profile
}

func newLargeProfiles(tb testing.TB, ls largeScale) *largeProfiles {
	tb.Helper()
	bgJob := dag.NewBuilder("lc-bg").Stage("work", ls.bgTasks).MustBuild()
	bg := profile.MustNew(bgJob, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(40*time.Second, 2*time.Minute),
			Queue: stats.Exponential{MeanValue: time.Second}, FailureProb: 0.01},
	})
	bg2Job := dag.NewBuilder("lc-bg2").Stage("work", ls.bg2Tasks).MustBuild()
	bg2 := profile.MustNew(bg2Job, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(time.Minute, 3*time.Minute)},
	})
	fgJob := dag.NewBuilder("lc-fg").
		Stage("m", ls.fgMap).
		Stage("r", ls.fgReduce).
		Edge("m", "r", dag.AllToAll).
		MustBuild()
	fg := profile.MustNew(fgJob, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(30*time.Second, 90*time.Second),
			Queue: stats.Exponential{MeanValue: time.Second}},
		{Exec: stats.LognormalFromMedian(time.Minute, 3*time.Minute)},
	})
	return &largeProfiles{bg: bg, bg2: bg2, fg: fg}
}

// run replays the workload to completion: all three jobs are tracked (the
// background jobs with NoTrace) so every task attempt is simulated.
func (p *largeProfiles) run(tb testing.TB, c *Cluster, ls largeScale) []Result {
	tb.Helper()
	submit := func(cfg JobConfig) *Handle {
		h, err := c.Submit(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		return h
	}
	hs := []*Handle{
		submit(JobConfig{Profile: p.bg, Guarantee: ls.bgGuar, Tracked: true, NoTrace: true}),
		submit(JobConfig{Profile: p.bg2, Guarantee: ls.bg2Guar, Weight: 2, Tracked: true, NoTrace: true,
			Start: 2 * time.Minute}),
		submit(JobConfig{Profile: p.fg, Guarantee: ls.fgGuar, Deadline: 4 * time.Hour,
			Tracked: true, NoTrace: true, Start: time.Minute}),
	}
	if err := c.Run(); err != nil {
		tb.Fatal(err)
	}
	out := make([]Result, len(hs))
	for i, h := range hs {
		out[i] = h.Result()
	}
	return out
}

func benchLargeCluster(b *testing.B, ls largeScale) {
	p := newLargeProfiles(b, ls)
	cfg := ls.config()
	eng := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := eng.Reset(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p.run(b, c, ls)
	}
}

// BenchmarkEngineLargeCluster is the cosmos-scale acceptance benchmark:
// 10k machines, ≥1e5 concurrent tasks per replay (ROADMAP item 3).
func BenchmarkEngineLargeCluster(b *testing.B) { benchLargeCluster(b, cosmosScale) }

// BenchmarkEngineMidCluster is the same workload at 1/10 scale, cheap
// enough to compare engines before and after the scale work.
func BenchmarkEngineMidCluster(b *testing.B) { benchLargeCluster(b, midScale) }

// BenchmarkEngineHugeCluster is the 10⁶-task acceptance benchmark: 5e5
// slots stay saturated (≥5e5 concurrent tasks), so every dispatch wave is
// an arrival burst and the event queue holds ≥5e5 in-flight task ends.
func BenchmarkEngineHugeCluster(b *testing.B) { benchLargeCluster(b, hugeScale) }
