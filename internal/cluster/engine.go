package cluster

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/invariant"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
	"github.com/jockeysim/jockey/internal/utility"
)

type evKind int

const (
	evArrival evKind = iota
	evTaskEnd
	evControlTick
	evDeadlineChange
	evMachineFail
	evMachineRecover
	evJobSample
	evSpecTick
	evStageDrift
	evRackOutage
	evContention
	evEpoch
)

type event struct {
	kind    evKind
	job     int
	stage   int
	task    int
	attempt int
	failed  bool
	dup     bool // the attempt is a speculative duplicate
	machine int
	change  int // index into DeadlineChanges, Drifts, or RackOutages
}

// Run processes events until every tracked job has completed and every Hold
// has been released (or the event queue drains, or MaxSimTime is exceeded,
// which returns an error).
func (c *Cluster) Run() error {
	for c.tracked+c.holds > 0 {
		at, ev, ok := c.q.Pop()
		if !ok {
			return fmt.Errorf("cluster: event queue drained with %d tracked jobs unfinished and %d holds open (%s)",
				c.tracked, c.holds, c.unfinishedTracked())
		}
		if at > c.cfg.MaxSimTime {
			return fmt.Errorf("cluster: exceeded max simulated time %v with %d tracked jobs unfinished (%s)",
				c.cfg.MaxSimTime, c.tracked, c.unfinishedTracked())
		}
		c.accrueUtil(at)
		c.now = at
		switch ev.kind {
		case evArrival:
			c.handleArrival(ev.job)
		case evTaskEnd:
			c.handleTaskEnd(ev)
		case evControlTick:
			c.handleControlTick(ev.job)
		case evDeadlineChange:
			c.handleDeadlineChange(ev)
		case evMachineFail:
			c.handleMachineFail()
		case evMachineRecover:
			c.handleMachineRecover(ev.machine)
		case evJobSample:
			c.handleJobSample(ev.job)
		case evSpecTick:
			c.handleSpecTick(ev.job)
		case evStageDrift:
			c.handleStageDrift(ev)
		case evRackOutage:
			c.handleRackOutage(ev.change)
		case evContention:
			c.reschedule() // effective guarantees changed at this boundary
		case evEpoch:
			c.handleEpoch()
		}
	}
	return nil
}

// handleEpoch runs the arbiter hook, keeps the epoch chain alive while the
// hook asks for it, and performs the scheduling pass that puts any guarantee
// changes (and same-time submissions) into effect.
func (c *Cluster) handleEpoch() {
	if c.cfg.OnEpoch == nil {
		return
	}
	if c.cfg.OnEpoch(c.now) {
		c.q.Push(c.now+c.cfg.EpochPeriod, event{kind: evEpoch})
	}
	c.reschedule()
}

// unfinishedTracked names the tracked jobs that have not completed, for
// debuggable failure messages.
func (c *Cluster) unfinishedTracked() string {
	names := ""
	for _, jr := range c.jobs {
		if jr.cfg.Tracked && !jr.completed {
			if names != "" {
				names += ", "
			}
			names += jr.job.Name
		}
	}
	return names
}

//jockey:hotpath
func (c *Cluster) accrueUtil(now time.Duration) {
	dt := now - c.lastUtilTime
	if dt <= 0 {
		return
	}
	running := 0
	for _, jr := range c.jobs {
		running += len(jr.running)
	}
	c.utilSamples = append(c.utilSamples, utilSample{at: dt, running: running, capacity: c.Capacity()})
	c.lastUtilTime = now
}

func (c *Cluster) handleArrival(id int) {
	jr := c.jobs[id]
	jr.arrived = true
	jr.start = c.now
	jr.lastAllocAt = c.now
	if jr.cfg.Tracked && !jr.cfg.NoTrace {
		// Traces outlive the run (results retain them), so they are always
		// freshly allocated, never pooled.
		jr.result.Trace = trace.New(jr.job.Name, jr.job.NumStages())
	}
	for s := 0; s < jr.job.NumStages(); s++ {
		for task := 0; task < jr.job.Stages[s].Tasks; task++ {
			if jr.remDeps[s][task] == 0 {
				jr.markReady(c.now, s, task)
			}
		}
	}
	if jr.cfg.Policy != nil {
		c.controlDecision(jr)
		c.q.Push(c.now+jr.cfg.ControlPeriod, event{kind: evControlTick, job: id})
	}
	for i, dc := range jr.cfg.DeadlineChanges {
		c.q.Push(jr.start+dc.At, event{kind: evDeadlineChange, job: id, change: i})
	}
	if jr.cfg.OnSample != nil {
		if jr.cfg.SamplePeriod <= 0 {
			jr.cfg.SamplePeriod = time.Minute
		}
		c.q.Push(c.now+jr.cfg.SamplePeriod, event{kind: evJobSample, job: id})
	}
	if jr.cfg.SpeculativeThreshold > 0 {
		c.q.Push(c.now+specTickPeriod, event{kind: evSpecTick, job: id})
	}
	for i, d := range jr.cfg.Drifts {
		if d.At == 0 {
			// A drift at the very start must cover the arrival dispatch too.
			c.applyDrift(jr, i)
			continue
		}
		c.q.Push(jr.start+d.At, event{kind: evStageDrift, job: id, change: i})
	}
	c.reschedule()
}

// specTickPeriod is how often speculation-enabled jobs re-check for
// stragglers even when no other event fires (the tail of a job is exactly
// when the event queue goes quiet).
const specTickPeriod = 15 * time.Second

//jockey:hotpath
func (c *Cluster) handleSpecTick(id int) {
	jr := c.jobs[id]
	// Stop the tick chain the moment the job can no longer speculate: a
	// completed (or unspeculated) job must not keep the event queue alive.
	if jr.completed || jr.tasksLeft == 0 || jr.cfg.SpeculativeThreshold <= 0 {
		return
	}
	c.q.Push(c.now+specTickPeriod, event{kind: evSpecTick, job: id})
	c.reschedule()
}

func (c *Cluster) handleStageDrift(ev event) {
	jr := c.jobs[ev.job]
	if jr.completed {
		return
	}
	c.applyDrift(jr, ev.change)
}

// applyDrift folds one StageDrift into the job's runtime factors.
// Already-running attempts keep their sampled durations; only attempts
// dispatched from now on see the drift.
//
//jockey:hotpath
func (c *Cluster) applyDrift(jr *jobRun, idx int) {
	d := jr.cfg.Drifts[idx]
	if d.Stage < 0 {
		for s := range jr.driftFactor {
			jr.driftFactor[s] *= d.Factor
		}
	} else {
		jr.driftFactor[d.Stage] *= d.Factor
	}
}

func (c *Cluster) handleRackOutage(idx int) {
	r := c.cfg.RackOutages[idx]
	until := c.now + r.Duration
	for mi := r.FirstMachine; mi < r.FirstMachine+r.Machines; mi++ {
		if c.machines[mi].up {
			c.killMachine(mi)
		}
		// An already-down machine (MTBF failure or overlapping rack) just has
		// its downtime extended; its earlier recover event goes stale.
		if until > c.machines[mi].downUntil {
			c.machines[mi].downUntil = until
			c.q.Push(until, event{kind: evMachineRecover, machine: mi})
		}
	}
	c.reschedule()
}

// contentionFrac returns the guarantee-scaling factor in force now (1 when
// no contention window is open; overlapping windows take the tightest).
//
//jockey:hotpath
func (c *Cluster) contentionFrac() float64 {
	f := 1.0
	for _, w := range c.cfg.Contention {
		if c.now >= w.From && c.now < w.To && w.Frac < f {
			f = w.Frac
		}
	}
	return f
}

// effectiveGuarantee returns how many guaranteed tokens the scheduler
// actually honors for the job right now. Allocation accounting still charges
// the nominal guarantee: during contention the job pays for a promise the
// cluster breaks.
//
//jockey:hotpath
func (c *Cluster) effectiveGuarantee(jr *jobRun) int {
	f := c.contentionFrac()
	if f >= 1 {
		return jr.guarantee
	}
	return int(float64(jr.guarantee) * f)
}

func (c *Cluster) handleJobSample(id int) {
	jr := c.jobs[id]
	if jr.completed {
		return
	}
	jr.cfg.OnSample(c.now-jr.start, jr.state(c.now))
	c.q.Push(c.now+jr.cfg.SamplePeriod, event{kind: evJobSample, job: id})
}

func (c *Cluster) handleControlTick(id int) {
	jr := c.jobs[id]
	if jr.completed {
		return
	}
	c.controlDecision(jr)
	c.q.Push(c.now+jr.cfg.ControlPeriod, event{kind: evControlTick, job: id})
	c.reschedule()
}

func (c *Cluster) controlDecision(jr *jobRun) {
	st := jr.state(c.now)
	d := jr.cfg.Policy.Decide(st)
	jr.accrueAlloc(c.now)
	jr.setGuarantee(c.now, d.Granted)
	if jr.cfg.OnDecision != nil {
		jr.cfg.OnDecision(c.now-jr.start, d)
	}
	if jr.result.Trace != nil {
		oracle := model.Oracle(jr.p.TotalWork(), jr.deadline)
		jr.result.Trace.AddAlloc(trace.AllocPoint{
			T:         c.now - jr.start,
			Raw:       d.Raw,
			Granted:   d.Granted,
			Running:   len(jr.running),
			Oracle:    oracle,
			Progress:  d.Progress,
			Predicted: d.Predicted,
			Mode:      d.Mode,
			Deviation: d.Deviation,
		})
	}
}

func (c *Cluster) handleDeadlineChange(ev event) {
	jr := c.jobs[ev.job]
	if jr.completed {
		return
	}
	dc := jr.cfg.DeadlineChanges[ev.change]
	jr.deadline = dc.Deadline
	if jr.cfg.Policy != nil {
		jr.cfg.Policy.ChangeUtility(utility.Deadline(dc.Deadline))
		// React immediately rather than waiting for the next tick.
		c.controlDecision(jr)
	}
	c.reschedule()
}

func (c *Cluster) handleTaskEnd(ev event) {
	jr := c.jobs[ev.job]
	key := taskKey{ev.stage, ev.task}
	var rt *runningTask
	var ok bool
	if ev.dup {
		rt, ok = jr.dups[key]
	} else {
		rt, ok = jr.running[key]
	}
	if !ok || rt.attempt != ev.attempt {
		return // stale event: the attempt was evicted, killed, or outraced
	}
	jr.accrueAlloc(c.now)
	if ev.dup {
		delete(jr.dups, key)
	} else {
		delete(jr.running, key)
	}
	c.machines[rt.machine].used--
	c.recordAttempt(jr, rt, c.now, ev.failed)
	sibling, siblingDup := jr.sibling(key, ev.dup)
	if ev.failed {
		c.freeRunningTask(rt)
		if sibling != nil {
			// The other copy carries on; nothing to requeue.
			c.reschedule()
			return
		}
		jr.attempts[ev.stage][ev.task]++
		jr.markReady(c.now, ev.stage, ev.task)
		c.reschedule()
		return
	}
	if sibling != nil {
		// This copy won the race: cancel the loser, discarding its work.
		c.cancelCopy(jr, key, sibling, siblingDup)
	}
	if rt.spawnedGuar {
		jr.guarDone++
	} else {
		jr.spareDone++
	}
	if len(jr.job.Inputs(ev.stage)) == 0 {
		jr.rootDone++
		for _, mi := range c.replicaMachines(jr, ev.stage, ev.task) {
			if mi == rt.machine {
				jr.localDone++
				break
			}
		}
	}
	c.freeRunningTask(rt)
	jr.done[ev.stage][ev.task] = true
	jr.doneCount[ev.stage]++
	jr.tasksLeft--
	for _, cons := range jr.consumers[ev.stage][ev.task] {
		jr.remDeps[cons.stage][cons.task]--
		if jr.remDeps[cons.stage][cons.task] == 0 {
			jr.markReady(c.now, cons.stage, cons.task)
		}
	}
	if jr.doneCount[ev.stage] == jr.job.Stages[ev.stage].Tasks {
		for _, edge := range jr.job.Outputs(ev.stage) {
			if edge.Kind != dag.AllToAll {
				continue
			}
			for t := 0; t < jr.job.Stages[edge.To].Tasks; t++ {
				jr.remDeps[edge.To][t]--
				if jr.remDeps[edge.To][t] == 0 {
					jr.markReady(c.now, edge.To, t)
				}
			}
		}
	}
	if jr.tasksLeft == 0 {
		c.completeJob(jr)
	}
	c.reschedule()
}

func (c *Cluster) recordAttempt(jr *jobRun, rt *runningTask, ended time.Duration, failed bool) {
	if jr.result.Trace == nil && jr.cfg.OnTaskEvent == nil {
		return
	}
	started := rt.execStart
	if started > ended {
		started = ended // killed during its init delay
	}
	e := trace.TaskEvent{
		Stage:      rt.stage,
		Task:       rt.task,
		Attempt:    rt.attempt,
		Queued:     jr.queuedAt[rt.stage][rt.task] - jr.start,
		Dispatched: rt.startedAt - jr.start,
		Started:    started - jr.start,
		Ended:      ended - jr.start,
		Failed:     failed,
	}
	if jr.result.Trace != nil {
		jr.result.Trace.AddTask(e)
	}
	if jr.cfg.OnTaskEvent != nil {
		jr.cfg.OnTaskEvent(e)
	}
}

func (c *Cluster) completeJob(jr *jobRun) {
	jr.accrueAlloc(c.now)
	jr.completed = true
	jr.setGuarantee(c.now, 0)
	completion := c.now - jr.start
	totalWork := jr.p.TotalWork()
	if jr.result.Trace != nil {
		jr.result.Trace.Completion = completion
		totalWork = jr.result.Trace.TotalWork()
	}
	oracle := model.Oracle(totalWork, jr.deadline)
	done := jr.guarDone + jr.spareDone
	spareFrac := 0.0
	if done > 0 {
		spareFrac = float64(jr.spareDone) / float64(done)
	}
	jr.result = Result{
		Name:               jr.job.Name,
		Start:              jr.start,
		Completion:         completion,
		Deadline:           jr.deadline,
		Met:                jr.deadline == 0 || completion <= jr.deadline,
		Oracle:             oracle,
		AllocTokenSeconds:  jr.allocSecs,
		OracleTokenSeconds: float64(oracle) * jr.deadline.Seconds(),
		UsedTokenSeconds:   jr.usedSecs,
		SpareTaskFraction:  spareFrac,
		Evictions:          jr.evictions,
		Duplicates:         jr.duplicates,
		LocalityFraction:   localityFraction(jr),
		Trace:              jr.result.Trace,
	}
	if jr.cfg.Tracked {
		c.tracked--
	}
}

func (c *Cluster) handleMachineFail() {
	// Pick a random up machine; if none, just schedule the next failure.
	up := make([]int, 0, len(c.machines))
	for i, m := range c.machines {
		if m.up {
			up = append(up, i)
		}
	}
	if len(up) > 0 {
		mi := up[c.rng.IntN(len(up))]
		c.killMachine(mi)
		rec := c.cfg.MachineRecovery.Sample(c.rng)
		if c.now+rec > c.machines[mi].downUntil {
			c.machines[mi].downUntil = c.now + rec
		}
		c.q.Push(c.now+rec, event{kind: evMachineRecover, machine: mi})
	}
	c.scheduleNextMachineFailure()
	c.reschedule()
}

func (c *Cluster) killMachine(mi int) {
	c.machines[mi].up = false
	for _, jr := range c.jobs {
		if !jr.arrived || jr.completed {
			continue
		}
		victims := c.scratchTasks[:0]
		for _, rt := range jr.running {
			if rt.machine == mi {
				victims = append(victims, rt)
			}
		}
		for _, rt := range jr.dups {
			if rt.machine == mi {
				victims = append(victims, rt)
			}
		}
		// Map iteration order is random; sort for deterministic replay.
		slices.SortFunc(victims, cmpTask)
		for _, rt := range victims {
			c.evictTask(jr, rt)
		}
		c.scratchTasks = victims
	}
	c.machines[mi].used = 0
}

// sibling returns the other live copy of a task (the duplicate if the
// primary just ended, or vice versa), if any.
func (jr *jobRun) sibling(key taskKey, endedDup bool) (*runningTask, bool) {
	if endedDup {
		if rt, ok := jr.running[key]; ok {
			return rt, false
		}
		return nil, false
	}
	if rt, ok := jr.dups[key]; ok {
		return rt, true
	}
	return nil, false
}

// cancelCopy kills the losing copy of a speculated task: its slot frees and
// its work is discarded, but the task is NOT requeued (the winner already
// completed it).
func (c *Cluster) cancelCopy(jr *jobRun, key taskKey, rt *runningTask, isDup bool) {
	if isDup {
		delete(jr.dups, key)
	} else {
		delete(jr.running, key)
	}
	c.machines[rt.machine].used--
	c.recordAttempt(jr, rt, c.now, true)
	c.freeRunningTask(rt)
}

// evictTask kills a running task attempt: its work is lost and the pending
// end event becomes stale. The task re-queues unless another copy of it is
// still running.
func (c *Cluster) evictTask(jr *jobRun, rt *runningTask) {
	jr.accrueAlloc(c.now)
	key := taskKey{rt.stage, rt.task}
	jr.evictions++
	if jr.dups[key] == rt {
		c.cancelCopy(jr, key, rt, true)
		if _, ok := jr.running[key]; !ok {
			// The duplicate was the only live copy (the primary had already
			// failed or been evicted): requeue the task.
			jr.attempts[key.stage][key.task]++
			jr.markReady(c.now, key.stage, key.task)
		}
		return
	}
	delete(jr.running, key)
	c.machines[rt.machine].used--
	c.recordAttempt(jr, rt, c.now, true)
	c.freeRunningTask(rt)
	if _, ok := jr.dups[key]; ok {
		// The duplicate carries on; no requeue.
		return
	}
	jr.attempts[key.stage][key.task]++
	jr.markReady(c.now, key.stage, key.task)
}

func (c *Cluster) handleMachineRecover(mi int) {
	if c.now < c.machines[mi].downUntil {
		return // stale: an overlapping outage extended this machine's downtime
	}
	c.machines[mi].up = true
	c.reschedule()
}

func (c *Cluster) scheduleNextMachineFailure() {
	mean := c.cfg.MachineMTBF.Seconds() / float64(len(c.machines))
	gap := time.Duration(c.rng.ExpFloat64() * mean * float64(time.Second))
	if gap <= 0 {
		gap = time.Second
	}
	c.q.Push(c.now+gap, event{kind: evMachineFail})
}

// replicaMachines returns the machines holding the input partition of a
// root-stage task, derived deterministically from the job and task
// identity (the DFS placement).
func (c *Cluster) replicaMachines(jr *jobRun, stage, task int) []int {
	if len(jr.job.Inputs(stage)) > 0 {
		return nil // only root stages read DFS partitions directly
	}
	n := len(c.machines)
	h := stats.DeriveSeedInt(uint64(jr.id)<<32|uint64(stage), task)
	out := c.scratchReplicas[:0]
	stride := 1
	if n > 1 {
		stride = 1 + int((h>>40)%uint64(n-1))
	}
	first := int(h % uint64(n))
	for i := 0; i < c.cfg.Replicas && i < n; i++ {
		out = append(out, (first+i*stride)%n)
	}
	c.scratchReplicas = out
	return out
}

// freeMachineFor returns a machine with a free slot for the given task,
// preferring machines holding the task's input replicas; -1 if the cluster
// is full.
func (c *Cluster) freeMachineFor(jr *jobRun, stage, task int) int {
	for _, mi := range c.replicaMachines(jr, stage, task) {
		m := &c.machines[mi]
		if m.up && m.used < m.slots {
			return mi
		}
	}
	return c.freeMachine()
}

// freeMachine returns a machine with a free slot, or -1.
func (c *Cluster) freeMachine() int {
	for i := range c.machines {
		m := &c.machines[i]
		if m.up && m.used < m.slots {
			return i
		}
	}
	return -1
}

// reschedule enforces the token-sharing policy: reclassify running tasks,
// satisfy guaranteed demand (evicting spare tasks when necessary), then
// hand out spare capacity round-robin.
func (c *Cluster) reschedule() {
	c.reclassify()
	c.dispatchGuaranteed()
	c.dispatchSpare()
}

// reclassify marks, per job, its earliest-started running tasks as
// guaranteed up to the job's guarantee; the remainder run on spare tokens.
func (c *Cluster) reclassify() {
	for _, jr := range c.jobs {
		if !jr.arrived || jr.completed || len(jr.running) == 0 {
			continue
		}
		tasks := c.scratchTasks[:0]
		for _, rt := range jr.running {
			tasks = append(tasks, rt)
		}
		// Deterministic order despite the map walk: cmpTask is a total
		// order (start time, then stage/task position, which is unique).
		slices.SortFunc(tasks, cmpTask)
		eff := c.effectiveGuarantee(jr)
		for i, rt := range tasks {
			rt.guaranteed = i < eff
		}
		c.scratchTasks = tasks
	}
}

// cmpTask totally orders running tasks by start time, then stage/task
// position. Within one job a primary and its duplicate cannot share a start
// time (speculation requires elapsed progress), so the order has no ties and
// an unstable sort is deterministic.
//
//jockey:hotpath
func cmpTask(a, b *runningTask) int {
	if a.startedAt != b.startedAt {
		return cmp.Compare(a.startedAt, b.startedAt)
	}
	if a.stage != b.stage {
		return a.stage - b.stage
	}
	return a.task - b.task
}

//jockey:hotpath
func lessTask(a, b *runningTask) bool { return cmpTask(a, b) < 0 }

// guaranteedOrder returns jobs with tracked (SLO) jobs first, then arrival
// order: admission control promised SLO jobs their guarantees, so they win
// when guarantees are over-subscribed.
func (c *Cluster) guaranteedOrder() []*jobRun {
	out := c.scratchJobs[:0]
	for _, jr := range c.jobs {
		if jr.cfg.Tracked {
			out = append(out, jr)
		}
	}
	for _, jr := range c.jobs {
		if !jr.cfg.Tracked {
			out = append(out, jr)
		}
	}
	c.scratchJobs = out
	return out
}

func (c *Cluster) dispatchGuaranteed() {
	for _, jr := range c.guaranteedOrder() {
		if !jr.arrived || jr.completed {
			continue
		}
		for jr.guaranteedRunning() < c.effectiveGuarantee(jr) && jr.readyLen() > 0 {
			r, _ := jr.popReady()
			mi := c.freeMachineFor(jr, r.stage, r.task)
			if mi < 0 {
				victim, vjob := c.youngestSpare()
				if victim == nil {
					// Every slot is running guaranteed work; put the task
					// back for the next scheduling pass.
					jr.markReady(c.now, r.stage, r.task)
					return
				}
				mi = victim.machine
				c.evictTask(vjob, victim)
			}
			c.startTask(jr, r, mi, true)
		}
	}
}

// youngestSpare finds the most recently started spare task in the cluster —
// the cheapest one to evict.
func (c *Cluster) youngestSpare() (*runningTask, *jobRun) {
	var best *runningTask
	var bestJob *jobRun
	for _, jr := range c.jobs {
		if !jr.arrived || jr.completed {
			continue
		}
		for _, rt := range jr.running {
			if rt.guaranteed {
				continue
			}
			if best == nil || lessTask(best, rt) {
				best, bestJob = rt, jr
			}
		}
		// Speculative duplicates are always spare and the cheapest victims.
		for _, rt := range jr.dups {
			if best == nil || lessTask(best, rt) {
				best, bestJob = rt, jr
			}
		}
	}
	return best, bestJob
}

func (c *Cluster) dispatchSpare() {
	if len(c.jobs) == 0 {
		return
	}
	idle := 0
	for {
		mi := c.freeMachine()
		if mi < 0 {
			return
		}
		// Smooth weighted round-robin over jobs with pending work: each
		// eligible job accrues credit proportional to its weight, the
		// highest-credit job gets the slot, and its credit is charged the
		// total weight. Over time a job receives spare slots in proportion
		// to its weight (the cluster's weighted fair sharing).
		eligible := c.scratchJobs[:0]
		totalWeight := 0.0
		for _, jr := range c.jobs {
			if !jr.arrived || jr.completed || jr.cfg.NoSpare || jr.readyLen() == 0 {
				continue
			}
			eligible = append(eligible, jr)
			totalWeight += float64(jr.cfg.Weight)
		}
		c.scratchJobs = eligible
		dispatched := false
		if len(eligible) > 0 {
			var pick *jobRun
			for _, jr := range eligible {
				jr.spareCredit += float64(jr.cfg.Weight)
				if pick == nil || jr.spareCredit > pick.spareCredit {
					pick = jr
				}
			}
			pick.spareCredit -= totalWeight
			r, _ := pick.popReady()
			if local := c.freeMachineFor(pick, r.stage, r.task); local >= 0 {
				mi = local
			}
			c.startTask(pick, r, mi, false)
			dispatched = true
		}
		if !dispatched {
			// No fresh work anywhere: spend truly idle slots on speculative
			// duplicates of straggling tasks.
			if !c.dispatchDuplicate(mi) {
				return
			}
			continue
		}
		idle++
		if idle > 1<<20 { // guard the Assertf so its args only box on failure
			invariant.Assertf(false, "cluster: spare dispatch runaway at t=%v (machine %d)", c.now, mi)
		}
	}
}

// dispatchDuplicate launches a speculative copy of the most-overdue
// straggler (across speculation-enabled jobs) on the given machine. It
// returns false if no task qualifies.
func (c *Cluster) dispatchDuplicate(mi int) bool {
	var worst *runningTask
	var worstJob *jobRun
	var worstRatio float64
	for _, jr := range c.jobs {
		th := jr.cfg.SpeculativeThreshold
		if th <= 0 || !jr.arrived || jr.completed {
			continue
		}
		for key, rt := range jr.running {
			if _, dup := jr.dups[key]; dup {
				continue // already speculated
			}
			p90 := jr.stageP90[rt.stage]
			if p90 <= 0 {
				continue
			}
			elapsed := c.now - rt.execStart
			ratio := float64(elapsed) / float64(p90)
			if ratio < th {
				continue
			}
			// Deterministic despite map iteration: strictly-better ratio
			// wins; exact ties resolve by task identity.
			if worst == nil || ratio > worstRatio ||
				(ratio == worstRatio && lessTask(rt, worst)) {
				worst, worstJob, worstRatio = rt, jr, ratio
			}
		}
	}
	if worst == nil {
		return false
	}
	c.startDuplicate(worstJob, worst, mi)
	return true
}

func (c *Cluster) startDuplicate(jr *jobRun, orig *runningTask, machine int) {
	jr.accrueAlloc(c.now)
	sp := &jr.p.Stages[orig.stage]
	initDelay := sp.Queue.Sample(jr.rng)
	exec := jr.driftExec(orig.stage, sp.Exec.Sample(jr.rng))
	if exec <= 0 {
		exec = time.Millisecond
	}
	fails := sp.FailureProb > 0 && jr.rng.Float64() < sp.FailureProb
	if fails {
		exec = time.Duration(float64(exec) * jr.rng.Float64())
		if exec <= 0 {
			exec = time.Millisecond
		}
	}
	rt := c.newRunningTask()
	*rt = runningTask{
		stage:     orig.stage,
		task:      orig.task,
		attempt:   orig.attempt,
		machine:   machine,
		startedAt: c.now,
		execStart: c.now + initDelay,
		// duplicates are always spare-class
	}
	jr.dups[taskKey{orig.stage, orig.task}] = rt
	jr.duplicates++
	c.machines[machine].used++
	c.q.Push(c.now+initDelay+exec, event{
		kind:    evTaskEnd,
		job:     jr.id,
		stage:   orig.stage,
		task:    orig.task,
		attempt: rt.attempt,
		failed:  fails,
		dup:     true,
	})
}

func (c *Cluster) startTask(jr *jobRun, r taskRef, machine int, guaranteed bool) {
	jr.accrueAlloc(c.now)
	sp := &jr.p.Stages[r.stage]
	initDelay := sp.Queue.Sample(jr.rng)
	exec := jr.driftExec(r.stage, sp.Exec.Sample(jr.rng))
	if exec <= 0 {
		exec = time.Millisecond
	}
	fails := false
	if sp.FailureProb > 0 && jr.attempts[r.stage][r.task] < maxClusterAttempts-1 {
		fails = jr.rng.Float64() < sp.FailureProb
	}
	if fails {
		exec = time.Duration(float64(exec) * jr.rng.Float64())
		if exec <= 0 {
			exec = time.Millisecond
		}
	}
	rt := c.newRunningTask()
	*rt = runningTask{
		stage:       r.stage,
		task:        r.task,
		attempt:     jr.attempts[r.stage][r.task],
		machine:     machine,
		startedAt:   c.now,
		execStart:   c.now + initDelay,
		guaranteed:  guaranteed,
		spawnedGuar: guaranteed,
	}
	jr.running[taskKey{r.stage, r.task}] = rt
	c.machines[machine].used++
	c.q.Push(c.now+initDelay+exec, event{
		kind:    evTaskEnd,
		job:     jr.id,
		stage:   r.stage,
		task:    r.task,
		attempt: rt.attempt,
		failed:  fails,
	})
}

// driftExec applies the stage's current runtime-drift factor to a sampled
// service time.
//
//jockey:hotpath
func (jr *jobRun) driftExec(stage int, exec time.Duration) time.Duration {
	if f := jr.driftFactor[stage]; f != 1 {
		exec = time.Duration(float64(exec) * f)
	}
	return exec
}

func localityFraction(jr *jobRun) float64 {
	if jr.rootDone == 0 {
		return 0
	}
	return float64(jr.localDone) / float64(jr.rootDone)
}

// maxClusterAttempts bounds re-execution of a failing task.
const maxClusterAttempts = 30
