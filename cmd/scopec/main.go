// Command scopec compiles a SCOPE-like script (see internal/scope for the
// language) into an execution plan and prints its structure — optionally as
// Graphviz DOT.
//
// Usage:
//
//	scopec [-dot] [file.scope]
//
// With no file argument the script is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/jockeysim/jockey/internal/scope"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the plan summary")
	flag.Parse()

	var (
		src []byte
		err error
	)
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: scopec [-dot] [file.scope]")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	job, err := scope.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(job.DOT())
		return
	}
	fmt.Printf("%v\n\n", job)
	fmt.Println("stages (topological order):")
	for _, s := range job.TopoOrder() {
		st := job.Stages[s]
		kind := "        "
		if job.IsBarrier(s) {
			kind = "barrier "
		}
		fmt.Printf("  %s%-16s %6d tasks", kind, st.Name, st.Tasks)
		if st.InputGB > 0 {
			fmt.Printf("  %8.1f GB", st.InputGB)
		}
		fmt.Println()
		for _, e := range job.Inputs(s) {
			fmt.Printf("           <- %s (%v)\n", job.Stages[e.From].Name, e.Kind)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scopec:", err)
	os.Exit(1)
}
