// Package vet is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, sized for the repository's own
// jockeyvet analyzer suite (cmd/jockeyvet). The build environment has no
// module proxy access, so instead of depending on x/tools this package
// provides the three pieces the suite needs: the Analyzer/Pass/Diagnostic
// types, a Check runner that applies the //jockeyvet:ignore directive, and
// (in driver.go) the `go vet -vettool` unitchecker protocol.
//
// The shapes deliberately mirror x/tools so the analyzers can migrate to the
// real framework verbatim if the dependency ever becomes available.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named, self-contained check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and the rule table.
	Name string
	// Doc is the one-paragraph description shown by `jockeyvet help`.
	Doc string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
	// FactTypes lists one zero value per fact type the analyzer exports or
	// imports, so the driver can serialize them across package boundaries.
	FactTypes []Fact
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	store *FactStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// IgnoreDirective is the source escape hatch: a comment of the form
//
//	//jockeyvet:ignore <reason>
//	//jockeyvet:ignore <analyzer> <reason>
//
// placed on (or on the line directly above) the offending line suppresses
// diagnostics for that one line. If the first word of the reason names an
// analyzer, only that analyzer's findings are suppressed; otherwise the
// directive covers every rule on the line. The reason is mandatory — an
// ignore without one is itself reported — and a reasoned directive that no
// longer suppresses anything is reported too (the unused-ignore check), so
// every suppression stays a live, documented exception.
const IgnoreDirective = "//jockeyvet:ignore"

type ignoreSite struct {
	pos      token.Pos
	analyzer string // "" = all analyzers on the line
	reason   string
	used     bool
}

// Check runs every analyzer over the package and returns the surviving
// diagnostics in file/line order: findings on lines covered by a reasoned
// //jockeyvet:ignore are dropped, ignores missing a reason are reported as
// findings themselves, and reasoned ignores that suppressed nothing are
// reported as stale. The store carries analyzer facts across packages; nil
// means facts stay local to this call.
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	if store == nil {
		store = NewFactStore()
	}
	names := map[string]bool{}
	var diags []Diagnostic
	for _, a := range analyzers {
		names[a.Name] = true
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, diags: &diags, store: store}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
	}

	// Collect ignore directives: filename -> suppressed line. A directive
	// covers exactly one line — its own when it trails code, otherwise the
	// line below it.
	ignores := map[string]map[int]*ignoreSite{}
	for _, f := range files {
		codeLines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || !n.Pos().IsValid() {
				return true
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			if n.End().IsValid() {
				codeLines[fset.Position(n.End()-1).Line] = true
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //jockeyvet:ignoreXXX — not the directive
				}
				pos := fset.Position(c.Pos())
				site := &ignoreSite{pos: c.Pos(), reason: strings.TrimSpace(rest)}
				// A first word naming an analyzer scopes the directive to that
				// one rule; the rest of the line is its reason.
				if first, rest, ok := strings.Cut(site.reason, " "); ok && names[first] {
					site.analyzer, site.reason = first, strings.TrimSpace(rest)
				} else if names[site.reason] {
					site.analyzer, site.reason = site.reason, ""
				}
				m := ignores[pos.Filename]
				if m == nil {
					m = map[int]*ignoreSite{}
					ignores[pos.Filename] = m
				}
				if codeLines[pos.Line] {
					m[pos.Line] = site
				} else {
					m[pos.Line+1] = site
				}
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		site := ignores[d.Position.Filename][d.Position.Line]
		if site != nil && site.reason != "" && (site.analyzer == "" || site.analyzer == d.Analyzer) {
			site.used = true
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	// A directive without a reason suppresses nothing and is an error: the
	// whole point of the escape hatch is the documented justification. A
	// reasoned directive that suppressed nothing is stale — the offending
	// code was fixed or the rule name is wrong — and is an error too, so
	// dead suppressions cannot pile up and mask future violations.
	for _, m := range ignores {
		reported := map[*ignoreSite]bool{}
		for _, site := range m {
			if reported[site] {
				continue
			}
			reported[site] = true
			switch {
			case site.reason == "":
				diags = append(diags, Diagnostic{
					Analyzer: "jockeyvet",
					Pos:      site.pos,
					Position: fset.Position(site.pos),
					Message:  "jockeyvet:ignore needs a reason (//jockeyvet:ignore <why the rule does not apply>)",
				})
			case !site.used:
				scope := "any rule"
				if site.analyzer != "" {
					scope = site.analyzer
				}
				diags = append(diags, Diagnostic{
					Analyzer: "jockeyvet",
					Pos:      site.pos,
					Position: fset.Position(site.pos),
					Message:  fmt.Sprintf("jockeyvet:ignore suppresses no %s diagnostic on this line; delete the stale directive", scope),
				})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// CalleeOfPkg reports whether call invokes a package-level function of the
// package with the given import path (e.g. time.Now), returning the
// function name.
func CalleeOfPkg(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// IsTestFile reports whether the position's file is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
