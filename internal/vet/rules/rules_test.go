package rules_test

import (
	"testing"

	"github.com/jockeysim/jockey/internal/vet/rules"
	"github.com/jockeysim/jockey/internal/vet/vettest"
)

func TestWalltime(t *testing.T) {
	vettest.Run(t, "testdata/walltime/sim", rules.Walltime)
}

func TestWalltimeAllowsNonDeterministicPackages(t *testing.T) {
	vettest.Run(t, "testdata/walltime/experiments", rules.Walltime)
}

func TestWalltimeGridWorkerPool(t *testing.T) {
	vettest.Run(t, "testdata/walltime/grid", rules.Walltime)
}

func TestWalltimeFlightRecorder(t *testing.T) {
	vettest.Run(t, "testdata/walltime/flight", rules.Walltime)
}

func TestWalltimeFleetArbiter(t *testing.T) {
	vettest.Run(t, "testdata/walltime/fleet", rules.Walltime)
}

func TestGlobalRand(t *testing.T) {
	vettest.Run(t, "testdata/globalrand/app", rules.GlobalRand)
}

func TestGlobalRandFlightReplay(t *testing.T) {
	vettest.Run(t, "testdata/globalrand/flight", rules.GlobalRand)
}

func TestGlobalRandFleetArrivals(t *testing.T) {
	vettest.Run(t, "testdata/globalrand/fleet", rules.GlobalRand)
}

func TestMapOrder(t *testing.T) {
	vettest.Run(t, "testdata/maporder/app", rules.MapOrder)
}

func TestPanicPath(t *testing.T) {
	vettest.Run(t, "testdata/panicpath/libpkg", rules.PanicPath)
}

func TestPanicPathAllowsMain(t *testing.T) {
	vettest.Run(t, "testdata/panicpath/cmdtool", rules.PanicPath)
}

func TestErrCtx(t *testing.T) {
	vettest.Run(t, "testdata/errctx/cluster", rules.ErrCtx)
}

// TestIgnoreDirective proves a reasoned //jockeyvet:ignore suppresses the
// diagnostic on exactly one line: the directive's own line when trailing
// code, the next line when standalone — and nothing more.
func TestIgnoreDirective(t *testing.T) {
	vettest.Run(t, "testdata/ignore/app", rules.GlobalRand)
}
