package cluster

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// TestMachineFailureZeroAllocs pins the failure path to zero steady-state
// allocations: picking the victim machine (bitset select, not a rebuilt
// slice), collecting and sorting its tasks (intrusive list + insertion
// sort, not per-job map scans), evicting them, and rescheduling must all
// run on pre-grown state. At cosmos scale failures fire constantly, so a
// single allocation per failure shows up as GC pressure across a replay.
func TestMachineFailureZeroAllocs(t *testing.T) {
	job := dag.NewBuilder("failbg").Stage("work", 40).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 2 * time.Hour}}, // outlives the whole test: tasks only leave by eviction
	})
	cfg := Config{
		Machines:        8,
		SlotsPerMachine: 4,
		Seed:            7,
		MachineRecovery: stats.Point{V: 2 * time.Minute},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobConfig{Profile: p, Guarantee: 16}); err != nil {
		t.Fatal(err)
	}
	// Dispatch the job without entering Run (the job never completes, so Run
	// would never return): the arrival handler performs the initial
	// scheduling pass that fills the cluster with running tasks.
	c.handleArrival(0)
	if c.totalRunning == 0 {
		t.Fatal("no tasks running after arrival")
	}
	keep := c.q.Len()
	cycle := func() {
		c.handleMachineFail()
		// Bring every machine back immediately so each iteration sees a full
		// cluster of victims, and drain the events this cycle queued (the
		// stale ends of evicted attempts plus our own bookkeeping) so the
		// queue cannot grow — and hence cannot reallocate — across runs.
		for mi := range c.mUsed {
			if !c.upBits.get(mi) && c.mDown[mi] > c.now {
				c.now = c.mDown[mi]
			}
		}
		for mi := range c.mUsed {
			if !c.upBits.get(mi) {
				c.handleMachineRecover(mi)
			}
		}
		for c.q.Len() > keep {
			c.q.Pop()
		}
	}
	for i := 0; i < 300; i++ {
		cycle() // warm the scratch buffers, free lists, and queue capacity
	}
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Errorf("machine failure allocates %.1f times per event, want 0", avg)
	}
}
