// Package cluster is a discrete-event simulator of a shared data-parallel
// cluster in the style of Cosmos (§2.1 of the paper). It provides the
// execution environment Jockey is evaluated in:
//
//   - machines × slots define total capacity; one running task uses one
//     token (slot);
//   - every job has a guaranteed token count; guaranteed demand is always
//     satisfied, evicting spare-capacity tasks if necessary;
//   - unused capacity is redistributed to jobs with pending tasks as
//     *spare* tokens via smooth weighted round-robin (work-conserving
//     weighted fair sharing, like the paper's cluster);
//   - tasks started on spare tokens run at lower priority: they are evicted
//     (losing their work) when guaranteed demand needs their slot;
//   - machines fail and recover, killing their running tasks;
//   - per-job control policies (package control) adjust the guaranteed
//     token count periodically, which is exactly Jockey's actuation knob.
//
// Determinism: all randomness flows from the configured seed; event ties
// break by insertion order.
package cluster

import (
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/eventq"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
	"github.com/jockeysim/jockey/internal/utility"
)

// Config describes the simulated cluster.
type Config struct {
	// Machines is the number of servers (default 25).
	Machines int
	// SlotsPerMachine is the token capacity of each server (default 4).
	SlotsPerMachine int
	// MachineMTBF is the mean time between machine failures across the
	// whole cluster fleet; zero disables machine failures.
	MachineMTBF time.Duration
	// MachineRecovery is the outage duration distribution (default: 5min).
	MachineRecovery stats.Distribution
	// Seed drives all cluster randomness.
	Seed uint64
	// MaxSimTime aborts a run that exceeds this simulated horizon
	// (default 10 days) — a guard against misconfigured workloads.
	MaxSimTime time.Duration
	// Replicas is the number of machines holding each input partition of a
	// root (extract) stage in the distributed file system (default 3, like
	// GFS/HDFS/Cosmos). Root tasks prefer these machines; running there
	// co-locates storage and computation ("locality", §2.1/§3.1).
	Replicas int
	// RackOutages schedules correlated multi-machine failures (a rack or
	// container losing power/network), unlike the independent failures MTBF
	// models. Used to manufacture conditions a training run never saw.
	RackOutages []RackOutage
	// Contention schedules cluster-wide token-contention windows during
	// which jobs receive fewer tokens than their nominal guarantee —
	// modelling over-subscription, where the promise is not honored.
	Contention []ContentionWindow
	// OnEpoch, if set, is invoked every EpochPeriod starting at time zero,
	// before a scheduling pass. It is the hook a cluster-wide arbiter (the
	// fleet layer) uses to admit jobs and re-set guarantees mid-run: the
	// callback may call Submit and Handle.SetGuarantee; the epoch handler
	// reschedules once afterwards. Returning false stops the epoch chain.
	OnEpoch func(now time.Duration) bool
	// EpochPeriod is the OnEpoch cadence (default 1 minute when OnEpoch is
	// set; ignored otherwise).
	EpochPeriod time.Duration
	// EventPolicy selects the event queue's storage regime (see
	// internal/eventq): the zero value, eventq.PolicyAuto, starts on the
	// reference binary heap and promotes to the calendar queue at cosmos-
	// scale event counts; PolicyHeap or PolicyCalendar pin one regime. The
	// replay is bit-identical under every policy — (time, seq) is a strict
	// total order — so the knob exists for differential tests and
	// benchmarks, not for tuning output.
	EventPolicy eventq.Policy
}

// RackOutage takes a contiguous range of machines down together at a fixed
// cluster time — a correlated failure, as opposed to MachineMTBF's
// independent ones.
type RackOutage struct {
	// At is the outage time on the cluster clock.
	At time.Duration
	// FirstMachine is the index of the first machine in the rack.
	FirstMachine int
	// Machines is how many consecutive machines go down.
	Machines int
	// Duration is how long the rack stays down.
	Duration time.Duration
}

// ContentionWindow models token over-subscription during [From, To): every
// job's dispatchable guarantee is scaled down to Frac of its nominal value
// (allocation accounting still charges the nominal guarantee — the promise —
// which is exactly what makes a controller's model stale).
type ContentionWindow struct {
	// From and To bound the window on the cluster clock.
	From, To time.Duration
	// Frac in [0, 1) scales each job's dispatchable guarantee.
	Frac float64
}

// StageDrift multiplies one stage's (or every stage's) task service times by
// Factor from a point in the job's run onward — input growth, data skew, or
// slow hardware the profile run never saw. Only attempts dispatched after At
// are affected.
type StageDrift struct {
	// At is the offset from job start at which the drift appears.
	At time.Duration
	// Stage is the affected stage index; -1 applies the drift to all stages.
	Stage int
	// Factor multiplies task service times (must be > 0; 2 = tasks take
	// twice as long as profiled).
	Factor float64
}

func (c *Config) fill() error {
	if c.Machines == 0 {
		c.Machines = 25
	}
	if c.SlotsPerMachine == 0 {
		c.SlotsPerMachine = 4
	}
	if c.Machines < 1 || c.SlotsPerMachine < 1 {
		return fmt.Errorf("cluster: need at least one machine and one slot, got %d×%d",
			c.Machines, c.SlotsPerMachine)
	}
	if c.MachineRecovery == nil {
		c.MachineRecovery = stats.Exponential{MeanValue: 5 * time.Minute}
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = 240 * time.Hour
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Replicas < 1 {
		return fmt.Errorf("cluster: need at least one replica, got %d", c.Replicas)
	}
	for i, r := range c.RackOutages {
		if r.At < 0 || r.Duration <= 0 {
			return fmt.Errorf("cluster: rack outage %d needs At >= 0 and Duration > 0, got At=%v Duration=%v",
				i, r.At, r.Duration)
		}
		if r.Machines < 1 || r.FirstMachine < 0 || r.FirstMachine+r.Machines > c.Machines {
			return fmt.Errorf("cluster: rack outage %d spans machines [%d, %d) of a %d-machine cluster",
				i, r.FirstMachine, r.FirstMachine+r.Machines, c.Machines)
		}
	}
	for i, w := range c.Contention {
		if w.From < 0 || w.To <= w.From {
			return fmt.Errorf("cluster: contention window %d needs 0 <= From < To, got [%v, %v)",
				i, w.From, w.To)
		}
		if w.Frac < 0 || w.Frac >= 1 {
			return fmt.Errorf("cluster: contention window %d fraction %v out of [0, 1)", i, w.Frac)
		}
	}
	if c.OnEpoch != nil && c.EpochPeriod <= 0 {
		c.EpochPeriod = time.Minute
	}
	return nil
}

// DeadlineChange reschedules a job's SLO mid-run (§5.2 "Adapting to changes
// in deadlines").
type DeadlineChange struct {
	// At is the offset from job start at which the change takes effect.
	At time.Duration
	// Deadline is the new deadline; the job's utility becomes
	// utility.Deadline(Deadline).
	Deadline time.Duration
}

// JobConfig submits one job to the cluster.
type JobConfig struct {
	// Profile supplies the plan and the ground-truth distributions used to
	// sample actual task behaviour on this cluster. Required.
	Profile *profile.Profile
	// Policy dynamically sets the job's guaranteed tokens. Nil means the
	// job keeps the fixed Guarantee (typical for background jobs).
	Policy control.Policy
	// Guarantee is the initial (or fixed) guaranteed token count.
	Guarantee int
	// Weight sets the job's share of *spare* tokens relative to other jobs
	// (the paper's weighted fair sharing: "tokens are analogous to tickets
	// in a lottery scheduler or the weights in a weighted fair queuing
	// regime"). Zero means 1.
	Weight int
	// ControlPeriod is how often the policy runs (default 1 minute).
	ControlPeriod time.Duration
	// Deadline is the job's SLO, used for oracle accounting and the Met
	// result. Zero means no SLO.
	Deadline time.Duration
	// Start is the submission time, relative to cluster start.
	Start time.Duration
	// Tracked jobs keep the cluster running until they finish and get a
	// full task-event trace. Background jobs should leave this false.
	Tracked bool
	// NoSpare restricts the job to its guaranteed tokens: it never receives
	// spare capacity. Used for controlled-allocation measurement runs
	// (§2.4's "restricted to using guaranteed capacity only").
	NoSpare bool
	// SpeculativeThreshold enables Mantri-style straggler mitigation (the
	// §4.4 "aggressiveness of mitigating stragglers" knob): when a task has
	// been executing longer than threshold × its stage's p90 service time,
	// a duplicate copy is launched on otherwise-idle spare capacity and the
	// first finisher wins. Zero disables speculation. Values below 1 are
	// rejected (they would duplicate healthy tasks).
	SpeculativeThreshold float64
	// DeadlineChanges, if any, must be sorted ascending by At.
	DeadlineChanges []DeadlineChange
	// Drifts injects per-stage runtime drift mid-run (see StageDrift) —
	// ground truth diverging from the profile the job's policy was built on.
	Drifts []StageDrift
	// OnDecision, if set, observes every control decision.
	OnDecision func(at time.Duration, d control.Decision)
	// OnTaskEvent, if set, observes every completed task attempt as it
	// happens — the live feed the guard-rail layer (control.Guard) blends
	// into its profile for online re-profiling. Fires for Tracked and
	// untracked jobs alike.
	OnTaskEvent func(e trace.TaskEvent)
	// OnSample, if set, observes the job's state every SamplePeriod
	// (default 1 minute), independent of any policy. Used by experiments
	// that replay progress indicators offline.
	OnSample func(at time.Duration, st model.State)
	// SamplePeriod is the OnSample period (default 1 minute).
	SamplePeriod time.Duration
	// NoTrace suppresses the task-event trace of a Tracked job. The run
	// still blocks Run until completion and produces a full Result; only
	// Result.Trace stays nil. Reused-engine benchmarks and steady-state
	// allocation guards use this, since a trace must outlive the run and
	// therefore cannot come from a reusable arena.
	NoTrace bool
}

// Result summarizes one job's execution.
type Result struct {
	Name string
	// Start is the submission time on the cluster clock.
	Start time.Duration
	// Completion is the job's end-to-end latency (from Start).
	Completion time.Duration
	// Deadline is the job's final SLO (after any mid-run changes).
	Deadline time.Duration
	// Met reports whether Completion <= Deadline (true when Deadline == 0).
	Met bool
	// Oracle is O(T, d) computed from the job's actual total work.
	Oracle int
	// AllocTokenSeconds integrates the guaranteed allocation over the run.
	AllocTokenSeconds float64
	// OracleTokenSeconds is Oracle × Deadline, the oracle's integral.
	OracleTokenSeconds float64
	// UsedTokenSeconds integrates actually-running tasks over the run.
	UsedTokenSeconds float64
	// SpareTaskFraction is the fraction of successful task attempts that
	// ran on spare tokens.
	SpareTaskFraction float64
	// Evictions counts spare tasks killed to make room for guaranteed work.
	Evictions int
	// Duplicates counts speculative straggler copies launched (0 unless
	// SpeculativeThreshold was set).
	Duplicates int
	// LocalityFraction is the fraction of the job's successful root-stage
	// (extract) task attempts that executed on a machine holding a replica
	// of their input partition. 0 for jobs without root-stage tasks is
	// impossible (every DAG has roots), but the field is 0 if nothing
	// completed locally.
	LocalityFraction float64
	// Trace is the full record (only for Tracked jobs).
	Trace *trace.JobTrace
}

// Handle refers to a submitted job.
type Handle struct {
	id  int
	c   *Cluster
	cfg JobConfig
}

// Done reports whether the job has completed.
func (h *Handle) Done() bool { return h.c.jobs[h.id].completed }

// Result returns the job's result; valid only once Done.
func (h *Handle) Result() Result { return h.c.jobs[h.id].result }

// Name returns the job's plan name.
func (h *Handle) Name() string { return h.cfg.Profile.Job.Name }

// SetGuarantee re-sets the job's guaranteed token count mid-run — the
// actuation knob of an external arbiter (the fleet layer) that owns the
// control loop itself instead of installing a per-job Policy. Allocation
// accounting accrues at the old guarantee up to now. The new guarantee takes
// effect at the next scheduling pass; Config.OnEpoch callbacks get one
// automatically when the epoch handler returns.
func (h *Handle) SetGuarantee(g int) {
	h.c.jobs[h.id].setGuarantee(h.c.now, g)
}

// Guarantee returns the job's current guaranteed token count.
func (h *Handle) Guarantee() int { return h.c.jobs[h.id].guarantee }

// State returns the job's observable control state (elapsed time and
// per-stage completion fractions) at the cluster's current time. Before the
// job's arrival event has fired it returns the zero state: elapsed 0 and all
// stage fractions 0, which is exactly the state the job is in at arrival.
func (h *Handle) State() model.State {
	jr := h.c.jobs[h.id]
	if !jr.arrived {
		return model.State{FracDone: make([]float64, jr.job.NumStages())}
	}
	return jr.state(h.c.now)
}

// Hold keeps Run from returning even when no tracked job is pending: Run
// loops while tracked jobs or holds remain. An arbiter that admits jobs
// mid-run (from Config.OnEpoch) holds the cluster before Run and releases
// with Unhold once its arrival stream is drained; without the hold, Run
// would return immediately when called before the first admission.
func (c *Cluster) Hold() { c.holds++ }

// Unhold releases one Hold.
func (c *Cluster) Unhold() {
	if c.holds > 0 {
		c.holds--
	}
}

// Cluster is the simulator instance. Create with New (one-shot) or via
// Engine.Reset (reusable arenas), submit jobs, then Run.
type Cluster struct {
	cfg    Config
	rng    *rand.Rand
	rngSrc *rand.PCG // retained so Engine.Reset can reseed without allocating
	q      eventq.Queue[event]
	now    time.Duration

	jobs    []*jobRun
	tracked int // tracked jobs not yet completed
	holds   int // open Hold()s keeping Run alive (the fleet arbiter's latch)

	// live indexes the jobs every scheduling pass actually iterates: arrived
	// and not yet completed, kept in job-id (submission) order so dispatch
	// tie-breaks match the full c.jobs scans of earlier engines exactly. A
	// fleet replay admits thousands of jobs over one cluster's lifetime;
	// without this index each reschedule pays O(admitted) even when a
	// handful of jobs are running.
	live []*jobRun

	// Machine state is struct-of-arrays, indexed by machine id. Every
	// machine has cfg.SlotsPerMachine slots; up/available membership lives
	// in the two bitsets so the dispatchers never scan the fleet:
	//
	//   - upBits: machine is up;
	//   - availBits: machine is up AND has a free slot (the invariant every
	//     used/up transition maintains) — freeMachine is availBits.first().
	//
	// mDown is the latest scheduled recovery time; recover events firing
	// earlier are stale (an overlapping rack outage extended the downtime).
	// mHead heads each machine's intrusive doubly-linked list of running
	// attempts (store.nextM/prevM), so killing a machine walks exactly its
	// own tasks.
	mUsed     []int32
	mDown     []time.Duration
	mHead     []int32
	upBits    bitset
	availBits bitset
	upCount   int
	upCap     int // Σ slots over up machines (Capacity without the scan)

	// store holds all live task attempts; totalRunning counts primary (non-
	// duplicate) attempts cluster-wide for utilization accounting.
	store        taskStore
	totalRunning int

	// busySecs/availSecs accumulate the utilization integral event by event
	// in chronological order — the same float additions, in the same order,
	// as the retired per-event sample log, so Utilization() is bit-identical
	// while a cosmos-scale replay no longer retains millions of samples.
	busySecs     float64
	availSecs    float64
	lastUtilTime time.Duration

	// eng is non-nil when this cluster is owned by a reusable Engine, which
	// then pools jobRun arenas across runs.
	eng *Engine

	// Scheduling scratch buffers, reused across events so the hot path
	// (dispatch / eviction / locality lookup, which run on nearly every
	// event) does not allocate. Their contents never outlive one call.
	scratchSlots    []int32
	scratchJobs     []*jobRun
	scratchReplicas []int

	// endBatch buffers the task-end events of one scheduling pass so they
	// are bulk-pushed (eventq.PushBatch) when the pass finishes: an arrival
	// burst that dispatches k tasks pays one amortized queue insert instead
	// of k sifts. No other event is pushed while a pass runs, so the batch
	// gets the same insertion sequences the per-task pushes got and the
	// replay is bit-identical.
	endBatch []eventq.Entry[event]
}

// New creates an empty cluster.
func New(cfg Config) (*Cluster, error) {
	c := &Cluster{}
	if err := c.init(cfg); err != nil {
		return nil, err
	}
	return c, nil
}

// init (re)initializes the cluster for cfg. It is shared by New and
// Engine.Reset; on the reuse path every backing array keeps its capacity
// and the RNG stream after the reseed is bit-identical to a fresh one.
func (c *Cluster) init(cfg Config) error {
	if err := cfg.fill(); err != nil {
		return err
	}
	c.cfg = cfg
	seed := stats.DeriveSeed(cfg.Seed, "cluster")
	if c.rngSrc == nil {
		c.rngSrc = stats.NewSource(seed)
		c.rng = rand.New(c.rngSrc)
	} else {
		stats.ReseedSource(c.rngSrc, seed)
	}
	c.q.SetPolicy(cfg.EventPolicy)
	c.q.Reset()
	c.now = 0
	c.tracked = 0
	c.holds = 0
	c.jobs = c.jobs[:0] // arenas were recycled by Engine.Reset
	c.live = c.live[:0]
	// One scheduling pass can start at most a task per slot, so sizing the
	// batch buffer to cluster capacity up front turns the first dispatch
	// wave's append chain (hundreds of MB of doubling copies at 5e5 slots)
	// into a single exact allocation that Reset then reuses.
	if want := cfg.Machines * cfg.SlotsPerMachine; cap(c.endBatch) < want {
		c.endBatch = make([]eventq.Entry[event], 0, want)
	}
	c.endBatch = c.endBatch[:0]
	c.store.reset()
	c.totalRunning = 0
	c.busySecs = 0
	c.availSecs = 0
	c.lastUtilTime = 0
	if cap(c.mUsed) < cfg.Machines {
		c.mUsed = make([]int32, cfg.Machines)
		c.mDown = make([]time.Duration, cfg.Machines)
		c.mHead = make([]int32, cfg.Machines)
	}
	c.mUsed = c.mUsed[:cfg.Machines]
	c.mDown = c.mDown[:cfg.Machines]
	c.mHead = c.mHead[:cfg.Machines]
	clear(c.mUsed)
	clear(c.mDown)
	for i := range c.mHead {
		c.mHead[i] = -1
	}
	c.upBits.init(cfg.Machines, true)
	c.availBits.init(cfg.Machines, true)
	c.upCount = cfg.Machines
	c.upCap = cfg.Machines * cfg.SlotsPerMachine
	if cfg.MachineMTBF > 0 {
		c.scheduleNextMachineFailure()
	}
	for i, r := range cfg.RackOutages {
		c.q.Push(r.At, event{kind: evRackOutage, change: i})
	}
	for _, w := range cfg.Contention {
		// Boundary events force a scheduling pass when the effective
		// guarantee changes; the window itself is evaluated from the clock.
		c.q.Push(w.From, event{kind: evContention})
		c.q.Push(w.To, event{kind: evContention})
	}
	if cfg.OnEpoch != nil {
		// The first epoch fires at time zero, before any same-time arrival
		// (insertion-order tie-break), so an arbiter sees the cluster from
		// the very start.
		c.q.Push(0, event{kind: evEpoch})
	}
	return nil
}

// Capacity returns the current total token capacity of up machines.
func (c *Cluster) Capacity() int { return c.upCap }

// TotalCapacity returns the capacity with all machines up.
func (c *Cluster) TotalCapacity() int {
	return c.cfg.Machines * c.cfg.SlotsPerMachine
}

// Now returns the current simulated time.
func (c *Cluster) Now() time.Duration { return c.now }

// Utilization returns the time-weighted average fraction of capacity in use
// over the run so far.
func (c *Cluster) Utilization() float64 {
	if c.availSecs == 0 {
		return 0
	}
	return c.busySecs / c.availSecs
}

// Submit adds a job to the cluster. It may be called before Run or from the
// future via JobConfig.Start.
func (c *Cluster) Submit(cfg JobConfig) (*Handle, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("cluster: JobConfig.Profile is required")
	}
	if cfg.Guarantee < 0 {
		return nil, fmt.Errorf("cluster: job %q has negative guarantee %d", cfg.Profile.Job.Name, cfg.Guarantee)
	}
	if cfg.Policy == nil && cfg.Guarantee == 0 {
		return nil, fmt.Errorf("cluster: job %q has neither a policy nor a fixed guarantee",
			cfg.Profile.Job.Name)
	}
	if cfg.SpeculativeThreshold != 0 && cfg.SpeculativeThreshold < 1 {
		return nil, fmt.Errorf("cluster: job %q speculative threshold %v must be >= 1 (or 0 to disable)",
			cfg.Profile.Job.Name, cfg.SpeculativeThreshold)
	}
	if cfg.Weight < 0 {
		return nil, fmt.Errorf("cluster: job %q has negative weight %d", cfg.Profile.Job.Name, cfg.Weight)
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	if cfg.ControlPeriod <= 0 {
		cfg.ControlPeriod = control.DefaultPeriod
	}
	if cfg.Start < c.now {
		cfg.Start = c.now
	}
	for i, dc := range cfg.DeadlineChanges {
		if dc.At < 0 || dc.Deadline <= 0 {
			return nil, fmt.Errorf("cluster: job %q deadline change %d needs At >= 0 and Deadline > 0, got At=%v Deadline=%v",
				cfg.Profile.Job.Name, i, dc.At, dc.Deadline)
		}
		if i > 0 && dc.At < cfg.DeadlineChanges[i-1].At {
			return nil, fmt.Errorf("cluster: job %q deadline change %d at %v precedes change %d at %v; changes must be sorted by time",
				cfg.Profile.Job.Name, i, dc.At, i-1, cfg.DeadlineChanges[i-1].At)
		}
	}
	for i, d := range cfg.Drifts {
		if d.At < 0 {
			return nil, fmt.Errorf("cluster: job %q drift %d has negative time %v", cfg.Profile.Job.Name, i, d.At)
		}
		if d.Factor <= 0 {
			return nil, fmt.Errorf("cluster: job %q drift %d has non-positive factor %v", cfg.Profile.Job.Name, i, d.Factor)
		}
		if d.Stage < -1 || d.Stage >= cfg.Profile.Job.NumStages() {
			return nil, fmt.Errorf("cluster: drift %d references stage %d, job %q has %d stages",
				i, d.Stage, cfg.Profile.Job.Name, cfg.Profile.Job.NumStages())
		}
	}
	id := len(c.jobs)
	var jr *jobRun
	if c.eng != nil {
		jr = c.eng.takeArena(cfg.Profile.Job)
	}
	if jr == nil {
		jr = newArena(cfg.Profile.Job)
	}
	jr.prepare(id, cfg, stats.DeriveSeed(c.cfg.Seed, "job", fmt.Sprint(id)))
	c.jobs = append(c.jobs, jr)
	if cfg.Tracked {
		c.tracked++
	}
	c.q.Push(cfg.Start, event{kind: evArrival, job: id})
	return &Handle{id: id, c: c, cfg: cfg}, nil
}

// SLODefaults returns a ready-to-use candidate allocation grid 1..max.
func SLODefaults(max int) []int {
	out := make([]int, max)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// jobRun is the runtime state of one submitted job. It is split into an
// arena part — everything whose size depends only on the plan (*dag.Job),
// allocated once by newArena and poolable across runs by Engine — and
// per-run state, (re)set in place by prepare.
type jobRun struct {
	id     int
	cfg    JobConfig
	p      *profile.Profile
	job    *dag.Job
	rng    *rand.Rand
	rngSrc *rand.PCG

	arrived   bool
	completed bool
	start     time.Duration
	result    Result

	guarantee int
	deadline  time.Duration

	ready     []taskRef
	readyHead int

	done      [][]bool
	doneCount []int
	remDeps   [][]int
	// baseRemDeps is the dependency count of every task at job start,
	// derived once from the plan; prepare restores remDeps from it.
	baseRemDeps [][]int
	queuedAt    [][]time.Duration
	attempts    [][]int
	consumers   [][][]taskRef
	tasksLeft   int

	// slot and dupSlot map [stage][task] to the store slot of the running
	// primary attempt / speculative duplicate (-1 when none) — the O(1)
	// lookup that replaces the running/dups maps of earlier engines.
	slot    [][]int32
	dupSlot [][]int32
	// The job's live attempts are partitioned across indexed heaps ordered
	// by taskStore.less, maintained incrementally at every state transition:
	//
	//   - guarHeap (max): primaries charged to guaranteed tokens;
	//   - spareMax (max) and spareMin (min): primaries on spare tokens, in
	//     both directions — the max end answers "youngest spare to evict",
	//     the min end reclassifies spares onto freed guaranteed tokens;
	//   - dupHeap (max): speculative duplicates (always spare-class).
	//
	// liveRunning counts primaries, guarCount the guaranteed-flagged subset;
	// the spare count is their difference.
	guarHeap    slotHeap
	spareMax    slotHeap
	spareMin    slotHeap
	dupHeap     slotHeap
	liveRunning int
	guarCount   int

	stageP90 []time.Duration // per stage, the service-time p90 (speculation trigger)
	// driftFactor multiplies each stage's sampled service times (1 until a
	// StageDrift fires; drifts compound multiplicatively).
	driftFactor []float64

	// allocation accounting
	lastAllocAt time.Duration
	allocSecs   float64
	usedSecs    float64
	spareDone   int
	guarDone    int
	evictions   int
	duplicates  int     // speculative copies launched
	spareCredit float64 // smoothed-weighted-round-robin deficit counter
	rootDone    int     // successful root-stage attempts
	localDone   int     // ... that ran on a replica machine

	nextChange int // index into cfg.DeadlineChanges
}

type taskRef struct{ stage, task int }

// newArena allocates the plan-shape-dependent state of a jobRun: slice
// sizes and the consumer graph depend only on the *dag.Job, so an arena is
// reusable across runs of any job sharing that plan (profiles may differ —
// a scaled input keeps the plan). Per-run state is set by prepare.
func newArena(job *dag.Job) *jobRun {
	jr := &jobRun{job: job}
	n := job.NumStages()
	jr.slot = make([][]int32, n)
	jr.dupSlot = make([][]int32, n)
	for s := 0; s < n; s++ {
		tasks := job.Stages[s].Tasks
		jr.slot[s] = make([]int32, tasks)
		jr.dupSlot[s] = make([]int32, tasks)
	}
	jr.done = make([][]bool, n)
	jr.doneCount = make([]int, n)
	jr.remDeps = make([][]int, n)
	jr.baseRemDeps = make([][]int, n)
	jr.queuedAt = make([][]time.Duration, n)
	jr.attempts = make([][]int, n)
	jr.consumers = make([][][]taskRef, n)
	jr.driftFactor = make([]float64, n)
	for s := 0; s < n; s++ {
		tasks := job.Stages[s].Tasks
		jr.done[s] = make([]bool, tasks)
		jr.remDeps[s] = make([]int, tasks)
		jr.baseRemDeps[s] = make([]int, tasks)
		jr.queuedAt[s] = make([]time.Duration, tasks)
		jr.attempts[s] = make([]int, tasks)
		jr.consumers[s] = make([][]taskRef, tasks)
	}
	for s := 0; s < n; s++ {
		for _, edge := range job.Inputs(s) {
			for task := 0; task < job.Stages[s].Tasks; task++ {
				if edge.Kind == dag.AllToAll {
					jr.baseRemDeps[s][task]++
					continue
				}
				lo, hi := job.DepRange(edge, task)
				jr.baseRemDeps[s][task] += hi - lo
				for i := lo; i < hi; i++ {
					jr.consumers[edge.From][i] = append(jr.consumers[edge.From][i], taskRef{s, task})
				}
			}
		}
	}
	return jr
}

// prepare (re)sets the per-run state for one submission, leaving the arena
// allocations in place. The reseeded RNG stream is bit-identical to a fresh
// one, so a pooled arena replays exactly like a newly allocated jobRun.
// queuedAt deliberately keeps stale values: markReady writes an entry
// before any dispatch or trace read of it.
func (jr *jobRun) prepare(id int, cfg JobConfig, seed uint64) {
	jr.id = id
	jr.cfg = cfg
	jr.p = cfg.Profile
	if jr.rngSrc == nil {
		jr.rngSrc = stats.NewSource(seed)
		jr.rng = rand.New(jr.rngSrc)
	} else {
		stats.ReseedSource(jr.rngSrc, seed)
	}
	jr.arrived = false
	jr.completed = false
	jr.start = 0
	jr.result = Result{}
	jr.guarantee = cfg.Guarantee
	jr.deadline = cfg.Deadline
	jr.ready = jr.ready[:0]
	jr.readyHead = 0
	jr.tasksLeft = 0
	jr.guarHeap.s = jr.guarHeap.s[:0]
	jr.spareMax.s = jr.spareMax.s[:0]
	jr.spareMin.s = jr.spareMin.s[:0]
	jr.dupHeap.s = jr.dupHeap.s[:0]
	jr.liveRunning = 0
	jr.guarCount = 0
	for s := range jr.done {
		clear(jr.done[s])
		jr.doneCount[s] = 0
		copy(jr.remDeps[s], jr.baseRemDeps[s])
		clear(jr.attempts[s])
		jr.driftFactor[s] = 1
		jr.tasksLeft += jr.job.Stages[s].Tasks
		for t := range jr.slot[s] {
			jr.slot[s][t] = -1
			jr.dupSlot[s][t] = -1
		}
	}
	jr.stageP90 = jr.stageP90[:0]
	if cfg.SpeculativeThreshold > 0 {
		for s := 0; s < jr.job.NumStages(); s++ {
			jr.stageP90 = append(jr.stageP90, cfg.Profile.Stages[s].Exec.Quantile(0.9))
		}
	}
	jr.lastAllocAt = 0
	jr.allocSecs = 0
	jr.usedSecs = 0
	jr.spareDone = 0
	jr.guarDone = 0
	jr.evictions = 0
	jr.duplicates = 0
	jr.spareCredit = 0
	jr.rootDone = 0
	jr.localDone = 0
	jr.nextChange = 0
}

func (jr *jobRun) fracDone() []float64 {
	out := make([]float64, jr.job.NumStages())
	for s := range out {
		out[s] = float64(jr.doneCount[s]) / float64(jr.job.Stages[s].Tasks)
	}
	return out
}

func (jr *jobRun) state(now time.Duration) model.State {
	return model.State{Elapsed: now - jr.start, FracDone: jr.fracDone()}
}

//jockey:hotpath
func (jr *jobRun) readyLen() int { return len(jr.ready) - jr.readyHead }

//jockey:hotpath
func (jr *jobRun) popReady() (taskRef, bool) {
	if jr.readyHead >= len(jr.ready) {
		return taskRef{}, false
	}
	r := jr.ready[jr.readyHead]
	jr.readyHead++
	if jr.readyHead > 1024 && jr.readyHead*2 > len(jr.ready) {
		jr.ready = append(jr.ready[:0], jr.ready[jr.readyHead:]...)
		jr.readyHead = 0
	}
	return r, true
}

//jockey:hotpath
func (jr *jobRun) markReady(now time.Duration, stage, task int) {
	jr.queuedAt[stage][task] = now
	jr.ready = append(jr.ready, taskRef{stage, task})
}

func (jr *jobRun) setGuarantee(now time.Duration, g int) {
	if g < 0 {
		g = 0
	}
	jr.accrueAlloc(now)
	jr.guarantee = g
}

//jockey:hotpath
func (jr *jobRun) accrueAlloc(now time.Duration) {
	if !jr.arrived || jr.completed {
		return
	}
	dt := (now - jr.lastAllocAt).Seconds()
	if dt > 0 {
		jr.allocSecs += float64(jr.guarantee) * dt
		jr.usedSecs += float64(jr.liveRunning) * dt
	}
	jr.lastAllocAt = now
}

func (jr *jobRun) currentUtility() utility.Fn {
	return utility.Deadline(jr.deadline)
}
