// Package utility models the economic utility of job completion times.
// Jockey's users express deadlines and their importance as a utility
// function U(t) of the completion time (§2.2, §4.3); the control loop picks
// the cheapest allocation that maximizes expected utility.
package utility

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/jockeysim/jockey/internal/invariant"
)

// Fn maps a job completion time to its utility.
type Fn interface {
	Utility(t time.Duration) float64
	fmt.Stringer
}

// Point is one vertex of a piecewise-linear utility curve.
type Point struct {
	T time.Duration
	U float64
}

// PiecewiseLinear is a utility curve defined by line segments between
// points, constant before the first and after the last point.
type PiecewiseLinear struct {
	points []Point
}

// NewPiecewiseLinear builds a curve through the given points. Points are
// sorted by time; duplicate times are an error.
func NewPiecewiseLinear(points []Point) (*PiecewiseLinear, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("utility: no points")
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].T < ps[j].T })
	for i := 1; i < len(ps); i++ {
		if ps[i].T == ps[i-1].T {
			return nil, fmt.Errorf("utility: duplicate point at t=%v", ps[i].T)
		}
	}
	return &PiecewiseLinear{points: ps}, nil
}

// Deadline builds the paper's standard experiment curve for deadline d:
// utility is flat at 1 until the deadline, falls to −1 ten minutes later,
// and keeps falling to −1000 at d+1000 minutes (§5.1).
func Deadline(d time.Duration) *PiecewiseLinear {
	pl, err := NewPiecewiseLinear([]Point{
		{T: 0, U: 1},
		{T: d, U: 1},
		{T: d + 10*time.Minute, U: -1},
		{T: d + 1000*time.Minute, U: -1000},
	})
	invariant.NoErr(err, "utility: Deadline(%v) built an invalid curve", d) // unreachable: points are distinct for any d >= 0
	return pl
}

// SoftDeadline builds a gentler curve for "soft" SLOs (§2.2): utility 1
// until the deadline, decaying linearly to 0 at d+grace, and flat at 0
// after — late completion is undesirable but never penalized.
func SoftDeadline(d, grace time.Duration) *PiecewiseLinear {
	if grace <= 0 {
		grace = time.Nanosecond
	}
	pl, err := NewPiecewiseLinear([]Point{
		{T: 0, U: 1},
		{T: d, U: 1},
		{T: d + grace, U: 0},
	})
	invariant.NoErr(err, "utility: SoftDeadline(%v, %v) built an invalid curve", d, grace)
	return pl
}

// Utility implements Fn by linear interpolation.
func (pl *PiecewiseLinear) Utility(t time.Duration) float64 {
	ps := pl.points
	if t <= ps[0].T {
		return ps[0].U
	}
	if t >= ps[len(ps)-1].T {
		return ps[len(ps)-1].U
	}
	// Find the segment containing t.
	i := sort.Search(len(ps), func(i int) bool { return ps[i].T > t }) - 1
	a, b := ps[i], ps[i+1]
	frac := float64(t-a.T) / float64(b.T-a.T)
	// Convex combination rather than a.U + frac*(b.U-a.U): the difference
	// form overflows to ±Inf when the endpoints are near ±MaxFloat64.
	return a.U*(1-frac) + b.U*frac
}

// ShiftEarlier returns a copy of the curve moved earlier in time by delta:
// the returned curve at time t equals the original at t+delta. The control
// loop uses this to implement the dead zone (§4.3), treating a deadline of
// 60 minutes as one of 57.
func (pl *PiecewiseLinear) ShiftEarlier(delta time.Duration) *PiecewiseLinear {
	ps := make([]Point, len(pl.points))
	for i, p := range pl.points {
		t := p.T - delta
		if t < 0 {
			t = 0
		}
		ps[i] = Point{T: t, U: p.U}
	}
	// Clamping at zero can create duplicate times; collapse them keeping
	// the last (worst) utility so the curve stays well formed.
	out := ps[:0]
	for _, p := range ps {
		if len(out) > 0 && out[len(out)-1].T == p.T {
			out[len(out)-1] = p
			continue
		}
		out = append(out, p)
	}
	return &PiecewiseLinear{points: out}
}

// Points returns a copy of the curve's vertices.
func (pl *PiecewiseLinear) Points() []Point {
	return append([]Point(nil), pl.points...)
}

func (pl *PiecewiseLinear) String() string {
	var b strings.Builder
	b.WriteString("utility[")
	for i, p := range pl.points {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%v, %g)", p.T, p.U)
	}
	b.WriteString("]")
	return b.String()
}
